"""Top-level AXI4MLIR driver: configuration to executable host code.

Typical use (see ``examples/quickstart.py``)::

    accel_hw, accel_info = make_matmul_system(version=3, size=8, flow="Cs")
    compiler = AXI4MLIRCompiler(accel_info)
    kernel = compiler.compile_matmul(64, 64, 64)
    board = make_pynq_z2()
    board.attach_accelerator(accel_hw)
    counters = kernel.run(board, A, B, C)      # C += A @ B on the accelerator
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from threading import Lock
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from .accel_config import AcceleratorInfo, CPUInfo
from .codegen import (
    compile_host_function,
    emit_function,
    schedule_event_count,
)
from .dialects import func, linalg
from .execution import interpret_function
from .execution.metrics import (
    METRICS_PLAN_COUNTERS,
    METRICS_PLAN_SCHEMA_VERSION,
)
from .execution.replay import replay_kernel
from .execution.synthesize import (
    TraceMismatch,
    cross_check_requested,
    diff_traces,
    synthesis_enabled,
    synthesize_trace,
)
from .execution.trace import (
    STAGE_TIMINGS,
    TRACE_COUNTERS,
    TRACE_SCHEMA_VERSION,
    TraceUnsupported,
    add_stage_time,
    record_trace,
    trace_enabled,
)
from .ir import Module, MemRefType, element_type_from_string, parse_module
from .ir.printer import print_module
from .runtime import AxiRuntime, CALL_STYLE_GENERATED, DoubleBufferedRuntime
from .soc import Board
from .store import STORE_COUNTERS, KernelStore
from .transforms import CompileError, build_axi4mlir_pipeline
from .transforms.lower_to_accel import LoweringPlan

#: Environment variable holding the on-disk kernel-store directory
#: (conventionally ``.repro_cache/`` at the repo root).
KERNEL_CACHE_DIR_ENV = "REPRO_KERNEL_CACHE_DIR"

#: On-disk store format/compatibility version.  Folded into every entry
#: filename and payload: bump it whenever lowering, emission, or the
#: CompiledKernel payload changes shape, so stale entries from an older
#: library version can never load silently.  (The serialized trace has
#: its own schema version, TRACE_SCHEMA_VERSION: a trace-only schema
#: bump evicts just the trace, not the lowered kernel.)
#: Version 3: pickle entries replaced by the checksummed JSON+npz
#: container of :mod:`repro.store`.
KERNEL_STORE_VERSION = 3


# -- disk-store suspension (circuit-breaker seam) ---------------------------
#
# The service layer's store circuit breaker needs a way to run one
# request on the no-store degradation path (PR 6's rung: memory-only
# compilation, bit-identical results) without mutating process-global
# environment from a worker thread.  The flag is thread-local so
# concurrent requests in one process degrade independently.

_disk_suspension = threading.local()


def disk_store_suspended() -> bool:
    """True while the calling thread is inside :func:`suspend_disk_store`."""
    return getattr(_disk_suspension, "count", 0) > 0


@contextmanager
def suspend_disk_store():
    """Temporarily disable the on-disk kernel store for this thread.

    Inside the context every :class:`KernelCache` behaves as if
    ``REPRO_KERNEL_CACHE_DIR`` were unset: compiles stay memory-only
    and no disk I/O is attempted.  Nestable; never affects other
    threads.
    """
    _disk_suspension.count = getattr(_disk_suspension, "count", 0) + 1
    try:
        yield
    finally:
        _disk_suspension.count -= 1


_SOURCE_TREE_DIGEST: Optional[str] = None


def _source_tree_digest() -> str:
    """Content hash of the installed ``repro`` package sources.

    Folded into every on-disk kernel-store entry name so that *any*
    source change — not just ones remembered in a manual version bump —
    invalidates persisted kernels/traces.  Without this, a restored
    cache (e.g. CI's ``actions/cache`` prefix restore) could silently
    serve drivers emitted by an older compiler.  Hashed once per
    process (~100 small files).
    """
    global _SOURCE_TREE_DIGEST
    if _SOURCE_TREE_DIGEST is None:
        root = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            hasher.update(str(path.relative_to(root)).encode())
            hasher.update(b"\0")
            try:
                hasher.update(path.read_bytes())
            except OSError:
                pass
        _SOURCE_TREE_DIGEST = hasher.hexdigest()
    return _SOURCE_TREE_DIGEST


def _np_dtype(element_type) -> np.dtype:
    text = str(element_type)
    return np.dtype({"f32": np.float32, "f64": np.float64,
                     "i32": np.int32, "i64": np.int64}.get(text, np.int32))


def build_matmul_module(m: int, n: int, k: int, element_type) -> Module:
    """A module holding ``matmul_call``: C(m,n) += A(m,k) * B(k,n)."""
    module = Module()
    func_op = func.define(
        "matmul_call",
        [
            MemRefType((m, k), element_type),
            MemRefType((k, n), element_type),
            MemRefType((m, n), element_type),
        ],
    )
    module.add_function(func_op)
    b = func.builder_at_entry(func_op)
    a, rhs, out = func.arguments(func_op)
    linalg.matmul(b, a, rhs, out)
    func.ret(b)
    return module


def build_conv_module(batch: int, in_ch: int, in_hw: int, out_ch: int,
                      f_hw: int, stride: int, element_type) -> Module:
    """A module holding ``conv_call`` for one NCHW/FCHW convolution."""
    out_hw = (in_hw - f_hw) // stride + 1
    module = Module()
    func_op = func.define(
        "conv_call",
        [
            MemRefType((batch, in_ch, in_hw, in_hw), element_type),
            MemRefType((out_ch, in_ch, f_hw, f_hw), element_type),
            MemRefType((batch, out_ch, out_hw, out_hw), element_type),
        ],
    )
    module.add_function(func_op)
    b = func.builder_at_entry(func_op)
    image, weights, out = func.arguments(func_op)
    linalg.conv_2d_nchw_fchw(b, image, weights, out, stride=stride)
    func.ret(b)
    return module


def accelerator_fingerprint(info: AcceleratorInfo) -> Tuple:
    """A hashable digest of everything that affects lowering.

    Two :class:`AcceleratorInfo` objects with equal fingerprints produce
    identical host code for the same kernel/shape/flow, so compiled
    kernels can be shared between compiler instances.
    """
    return (
        info.name,
        info.kernel,
        info.accel_size,
        str(info.data_type),
        info.dims,
        info.data,
        str(info.opcode_map),
        tuple((name, str(flow)) for name, flow in info.opcode_flows),
        info.selected_flow,
        str(info.init_opcodes) if info.init_opcodes is not None else None,
        info.dma_config.as_operand_list(),
        info.flexible_size,
        info.flex_quantum,
        info.buffer_capacity,
        info.loop_permutation,
        info.version,
    )


def cpu_fingerprint(cpu: CPUInfo) -> Tuple:
    """The CPU-config half of a kernel cache key (tiling decisions)."""
    return (cpu.cache_levels, cpu.cache_types, cpu.line_size,
            cpu.associativity, cpu.frequency_hz)


class KernelCache:
    """LRU cache of lowered kernels, shared across compiler instances.

    Flow-exploration sweeps (Fig. 11's 38 flows, fig12's specialized/
    unspecialized panels, ``examples/dataflow_exploration.py``) compile
    the same (accelerator, kernel, shape, flow, permutation, tiling)
    configuration repeatedly; the lowering pipeline and Python emission
    are deterministic, so each configuration is lowered at most once and
    later requests rebind the cached entry.  ``specialized_copies`` is a
    runtime knob, not a lowering input, so it is deliberately absent
    from the key.

    With ``REPRO_KERNEL_CACHE_DIR`` set (or ``disk_dir`` passed), the
    cache is additionally backed by the on-disk :class:`~repro.store.
    KernelStore` keyed by the same fingerprint: a memory miss first
    tries to load the lowered module + emitted source from disk, and
    fresh compilations are persisted, so repeated processes skip the
    lowering pipeline entirely.  Entries are checksummed JSON+npz
    containers (no pickle: an untrusted cache dir can fail to load but
    never execute code); corrupt files are quarantined and counted as
    ``disk_corrupt``, distinct from honest ``disk_misses``.  Concurrent
    processes sharing one store coordinate through per-entry advisory
    build locks, so each kernel is compiled once.
    """

    def __init__(self, maxsize: int = 256,
                 disk_dir: Optional[str] = None):
        self.maxsize = maxsize
        self.disk_dir = disk_dir
        self._entries: "OrderedDict[Tuple, CompiledKernel]" = OrderedDict()
        self._lock = Lock()
        self._stores: dict = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_corrupt = 0
        self.disk_stale = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.disk_misses = 0
            self.disk_corrupt = 0
            self.disk_stale = 0

    def merge_stats(self, delta: dict) -> None:
        """Fold a pool worker's hit/miss deltas into this cache's totals."""
        with self._lock:
            self.hits += delta.get("hits", 0)
            self.misses += delta.get("misses", 0)
            self.disk_hits += delta.get("disk_hits", 0)
            self.disk_misses += delta.get("disk_misses", 0)
            self.disk_corrupt += delta.get("disk_corrupt", 0)
            self.disk_stale += delta.get("disk_stale", 0)

    def stats(self) -> dict:
        from .execution.model_plan import MODEL_PLAN_COUNTERS

        stats = {"hits": self.hits, "misses": self.misses,
                 "entries": len(self._entries),
                 "trace": {**TRACE_COUNTERS, **METRICS_PLAN_COUNTERS,
                           **MODEL_PLAN_COUNTERS}}
        disk_dir = self._resolve_disk_dir()
        if disk_dir is not None:
            stats.update(disk_hits=self.disk_hits,
                         disk_misses=self.disk_misses,
                         disk_corrupt=self.disk_corrupt,
                         disk_stale=self.disk_stale,
                         disk_dir=str(disk_dir),
                         store={**STORE_COUNTERS})
        return stats

    # -- disk store -------------------------------------------------------
    def _resolve_disk_dir(self) -> Optional[Path]:
        if disk_store_suspended():
            return None
        directory = self.disk_dir or os.environ.get(KERNEL_CACHE_DIR_ENV)
        return Path(directory) if directory else None

    def _resolve_store(self) -> Optional[KernelStore]:
        directory = self._resolve_disk_dir()
        if directory is None:
            return None
        with self._lock:
            store = self._stores.get(directory)
            if store is None:
                store = self._stores[directory] = KernelStore(directory)
            return store

    @staticmethod
    def _entry_name(key: Tuple) -> str:
        """Entry name: ``kernel-<src digest>-<key digest>``.

        The source-tree digest rides in the name twice over — as a
        greppable prefix (so CI can prune entries no current source
        can ever hit, see ci.yml) and folded into the key digest (so
        collisions on the truncated prefix still cannot alias).
        """
        source_digest = _source_tree_digest()
        digest = hashlib.sha256(
            repr((KERNEL_STORE_VERSION, source_digest, key)).encode()
        ).hexdigest()
        return f"kernel-{source_digest[:12]}-{digest}"

    def _count_disk(self, status: str) -> None:
        with self._lock:
            if status == "hit":
                self.disk_hits += 1
            elif status == "corrupt":
                self.disk_corrupt += 1
            elif status == "stale":
                self.disk_stale += 1
            else:  # miss / io: the entry simply is not available
                self.disk_misses += 1

    def _disk_load(self, store: KernelStore, name: str,
                   count: bool = True) -> Optional["CompiledKernel"]:
        """Load + reconstruct one stored kernel, or ``None``.

        Container/codec failures are already quarantined by the store;
        a checksum-valid payload that fails *semantic* reconstruction
        (wrong version field, unparsable IR) is quarantined here for
        the same reason — the next compile republishes it.
        """
        status, payload = store.load(name, count=count)
        if status != "hit":
            if count:
                self._count_disk(status)
            return None
        if not isinstance(payload, dict) \
                or payload.get("store_version") != KERNEL_STORE_VERSION:
            store.quarantine(name)
            if count:
                self._count_disk("stale")
            return None
        try:
            module = parse_module(payload["ir"], verify=False)
            entry, source = compile_host_function(
                module.lookup(payload["func_name"]),
                source=payload["source"],
            )
        except Exception:
            store.quarantine(name)
            if count:
                self._count_disk("corrupt")
            return None
        if count:
            self._count_disk("hit")
        kernel = CompiledKernel(
            module=module,
            func_name=payload["func_name"],
            source=source,
            entry_point=entry,
            plan=payload.get("plan"),
            parameters=payload.get("parameters", {}),
            schedule_table=payload.get("schedule_table"),
        )
        # A persisted trace (+ its decoded replay plans) lets warm
        # processes skip both recording and synthesis; a stale schema
        # evicts just the trace, never the lowered kernel.
        trace = payload.get("trace")
        if trace is not None \
                and payload.get("trace_schema") == TRACE_SCHEMA_VERSION:
            kernel.trace_state.trace = trace
            TRACE_COUNTERS["disk_loaded"] += 1
            # MetricsPlans ride in their own payload slot with their own
            # schema version: a stale metrics schema evicts just the
            # plans (the trace and the lowered kernel still load), and
            # plans are only ever attached to the trace they were built
            # against.  An entry whose plans were evicted (or never
            # written) is NOT marked persisted, so the first replay's
            # persist hook rewrites it with current-schema plans.
            plans = payload.get("metrics_plans")
            plans_current = bool(plans) and payload.get("metrics_schema") \
                == METRICS_PLAN_SCHEMA_VERSION
            if plans_current:
                trace.metrics_plans.update(plans)
            kernel.trace_state.persisted = plans_current
        return kernel

    def _disk_store(self, key: Tuple, kernel: "CompiledKernel") -> None:
        store = self._resolve_store()
        if store is None:
            return
        trace = kernel.trace_state.trace
        payload = {
            "store_version": KERNEL_STORE_VERSION,
            "ir": print_module(kernel.module),
            "func_name": kernel.func_name,
            "source": kernel.source,
            "parameters": kernel.parameters,
            "plan": kernel.plan,
            "schedule_table": kernel.schedule_table,
            "trace_schema": TRACE_SCHEMA_VERSION,
            "trace": trace,
            # The trace's serialized form excludes metrics_plans; they
            # persist here under their own schema version so stale
            # plans evict independently of the trace.
            "metrics_schema": METRICS_PLAN_SCHEMA_VERSION,
            "metrics_plans": dict(trace.metrics_plans)
            if trace is not None else None,
        }
        # Unencodable payloads (plans outside the codec whitelist) stay
        # memory-only for this entry; store() reports, never raises.
        store.store(self._entry_name(key), payload)

    def get_or_compile(self, key: Tuple,
                       compile_fn: Callable[[], "CompiledKernel"]
                       ) -> "CompiledKernel":
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        store = self._resolve_store()
        kernel = None
        if store is not None:
            name = self._entry_name(key)
            kernel = self._disk_load(store, name)
            if kernel is None:
                # Serialize concurrent builders of this entry: the
                # losers block here, then find the winner's published
                # entry on the double-checked load.  Lock acquisition
                # failing only costs a redundant compile.
                with store.build_lock(name) as acquired:
                    if acquired:
                        kernel = self._disk_load(store, name, count=False)
                        if kernel is not None:
                            self._count_disk("hit")
                    if kernel is None:
                        kernel = compile_fn()
                        # Persist immediately (trace-less) so kernels
                        # that are compiled but never run — flow
                        # sweeps — still skip lowering next process;
                        # the persist hook below rewrites the entry
                        # with the trace after the first replay.
                        self._disk_store(key, kernel)
            # Re-persist the entry once the first run has built (and
            # decoded) the kernel's trace, so later processes load it.
            kernel.trace_state.persist = \
                lambda k=kernel, key=key: self._disk_store(key, k)
        else:
            kernel = compile_fn()
        with self._lock:
            self.misses += 1
            self._entries[key] = kernel
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return kernel


#: Process-wide default cache; ``AXI4MLIRCompiler(use_kernel_cache=False)``
#: opts out, tests reset it via ``default_kernel_cache().clear()``.
_GLOBAL_KERNEL_CACHE = KernelCache()


def default_kernel_cache() -> KernelCache:
    return _GLOBAL_KERNEL_CACHE


class KernelTraceState:
    """Shared (mutable) trace bookkeeping for one lowered kernel.

    Lives outside the :class:`CompiledKernel` dataclass fields proper so
    that ``dataclasses.replace`` rebinds (``specialized_copies``
    variants) share one recording.
    """

    __slots__ = ("lock", "trace", "failed", "persist", "persisted")

    def __init__(self):
        self.lock = Lock()
        self.trace = None
        self.failed = False
        #: Set by KernelCache when a disk store is active: re-persists
        #: the entry (now carrying the trace + decoded plans) once.
        self.persist = None
        self.persisted = False


@dataclass
class CompiledKernel:
    """The result of one compilation: IR, emitted source, callable."""

    module: Module
    func_name: str
    source: str
    entry_point: object
    plan: Optional[LoweringPlan] = None
    specialized_copies: bool = True
    parameters: dict = field(default_factory=dict)
    #: Schedule side table from the emitter (loop nest + rt calls).
    schedule_table: Optional[dict] = None
    trace_state: KernelTraceState = field(
        default_factory=KernelTraceState, repr=False, compare=False
    )

    @property
    def func_op(self):
        return self.module.lookup(self.func_name)

    def make_runtime(self, board: Board) -> AxiRuntime:
        return AxiRuntime(board, specialized_copies=self.specialized_copies,
                          call_style=CALL_STYLE_GENERATED)

    def run(self, board: Board, *arrays: np.ndarray,
            runtime: Optional[AxiRuntime] = None,
            trace: Optional[bool] = None,
            plan_source=None):
        """Execute the emitted host code against ``board``.

        Returns the perf counter delta for this invocation.

        ``trace`` selects trace-compiled execution: the kernel's static
        schedule is synthesized ahead-of-time from the emitter's side
        table (or recorded by a shadow run when synthesis cannot prove
        the schedule — ``REPRO_NO_SYNTH=1`` forces that path) and
        replayed as batched numpy, bit-identical to the per-tile path.
        ``None`` (the default) enables it unless ``REPRO_NO_TRACE=1``;
        unsupported drivers or runtimes fall back to per-tile execution
        transparently.

        ``plan_source`` overrides how the replay obtains its metrics
        plane (see :func:`repro.execution.replay.replay_kernel`); model
        sessions use it to serve fused per-step sub-plans.
        """
        rt = runtime or self.make_runtime(board)
        descriptors = [rt.make_memref(np.ascontiguousarray(a), f"arg{i}")
                       for i, a in enumerate(arrays)]
        before = board.snapshot()
        if self._trace_applicable(trace, rt) \
                and self._run_traced(board, rt, descriptors, plan_source):
            return board.measure_since(before)
        self.entry_point(rt, *descriptors)
        return board.measure_since(before)

    # -- trace-compiled execution ----------------------------------------
    def _trace_applicable(self, trace: Optional[bool], rt) -> bool:
        if trace is False or not trace_enabled():
            return False
        # Exact types only: runtime subclasses may override call
        # semantics in ways the replay executor cannot see.
        return type(rt) in (AxiRuntime, DoubleBufferedRuntime)

    def _build_trace(self, specs):
        """Synthesize the trace from the schedule table, else record.

        Synthesis failing is never an error — it falls back to the
        recording path — but ``REPRO_TRACE_CHECK=1`` records every
        synthesized kernel as well and raises :class:`TraceMismatch`
        if the two traces differ anywhere.
        """
        synthesized = None
        if synthesis_enabled():
            # Any synthesis failure — proven-unsupported constructs or
            # unexpected blowups (recursion/memory on pathological
            # schedules) — falls back to the recording path; only the
            # recorder erring may disable tracing for the kernel.
            try:
                synthesized = synthesize_trace(self.schedule_table, specs)
            except Exception:
                TRACE_COUNTERS["synth_fallback"] += 1
        if synthesized is not None and not cross_check_requested():
            TRACE_COUNTERS["synthesized"] += 1
            return synthesized
        recorded = record_trace(
            self.entry_point, specs,
            expected_events=schedule_event_count(self.schedule_table),
        )
        if synthesized is not None:
            mismatches = diff_traces(synthesized, recorded)
            if mismatches:
                raise TraceMismatch(
                    f"synthesized trace for {self.func_name!r} differs "
                    f"from the recorded one: {', '.join(mismatches)}"
                )
            TRACE_COUNTERS["synthesized"] += 1
            return synthesized
        TRACE_COUNTERS["recorded"] += 1
        return recorded

    def _run_traced(self, board, rt, descriptors, plan_source=None) -> bool:
        state = self.trace_state
        if state.failed:
            return False
        if state.trace is None:
            with state.lock:
                if state.trace is None and not state.failed:
                    try:
                        specs = tuple(
                            (d.sizes, d.strides, d.itemsize, str(d.dtype))
                            for d in descriptors
                        )
                        state.trace = self._build_trace(specs)
                    except TraceMismatch:
                        raise  # cross-check mode fails loudly
                    except Exception:
                        # Unsupported or erroring drivers: record once,
                        # then always use the per-tile path (which will
                        # surface any real error to the caller).
                        state.failed = True
        if state.trace is None:
            return False
        try:
            replay_kernel(state.trace, board, rt, descriptors,
                          type(rt) is DoubleBufferedRuntime,
                          plan_source=plan_source)
        except TraceUnsupported:
            return False
        if state.persist is not None and not state.persisted:
            # First successful replay: the trace and the decoded plan
            # for this accelerator exist now — write them through.
            state.persisted = True
            state.persist()
        return True

    def run_interpreted(self, board: Board, *arrays: np.ndarray,
                        runtime: Optional[AxiRuntime] = None):
        """Execute via the reference interpreter (tests / debugging)."""
        rt = runtime or self.make_runtime(board)
        descriptors = [rt.make_memref(np.ascontiguousarray(a), f"arg{i}")
                       for i, a in enumerate(arrays)]
        before = board.snapshot()
        interpret_function(self.func_op, descriptors, rt)
        return board.measure_since(before)


class AXI4MLIRCompiler:
    """User-facing compiler: accelerator config in, host driver out."""

    def __init__(self, info: AcceleratorInfo, cpu: Optional[CPUInfo] = None,
                 flow_name: Optional[str] = None,
                 permutation: Optional[Sequence[str]] = None,
                 enable_cpu_tiling: bool = True,
                 specialized_copies: bool = True,
                 kernel_cache: Optional[KernelCache] = None,
                 use_kernel_cache: bool = True):
        self.info = info
        self.cpu = cpu or CPUInfo()
        self.flow_name = flow_name
        self.permutation = permutation if permutation is not None \
            else info.loop_permutation
        self.enable_cpu_tiling = enable_cpu_tiling
        self.specialized_copies = specialized_copies
        self.kernel_cache = kernel_cache if kernel_cache is not None \
            else (_GLOBAL_KERNEL_CACHE if use_kernel_cache else None)

    # -- generic entry ---------------------------------------------------
    def compile_module(self, module, func_name: Optional[str] = None,
                       parameters: Optional[dict] = None) -> CompiledKernel:
        """Compile a :class:`Module` or textual ``.mlir`` source.

        ``module`` may be an in-memory module or a string of textual IR
        (as printed by the IR printer / stored in ``tests/filecheck``
        fixtures).  ``func_name`` defaults to the module's first (and
        typically only) function.
        """
        start = time.perf_counter()
        try:
            if isinstance(module, str):
                module = parse_module(module, verify=True)
            if func_name is None:
                functions = module.functions()
                if not functions:
                    raise CompileError(
                        "module defines no func.func to compile"
                    )
                func_name = functions[0].get_attr("sym_name").value
            pipeline = build_axi4mlir_pipeline(
                self.info,
                cpu=self.cpu,
                flow_name=self.flow_name,
                permutation=self.permutation,
                enable_cpu_tiling=self.enable_cpu_tiling,
            )
            pipeline.run(module)
            func_op = module.lookup(func_name)
            emitted, schedule_table = emit_function(func_op)
            entry, source = compile_host_function(func_op, source=emitted)
            lower_pass = pipeline.passes[-1]
            plan = lower_pass.plans[0] \
                if getattr(lower_pass, "plans", None) else None
            return CompiledKernel(
                module=module,
                func_name=func_name,
                source=source,
                entry_point=entry,
                plan=plan,
                specialized_copies=self.specialized_copies,
                parameters=dict(parameters or {}),
                schedule_table=schedule_table,
            )
        finally:
            add_stage_time("compile_s", time.perf_counter() - start)

    def _cache_key(self, kernel_name: str, shape: Tuple) -> Tuple:
        permutation = tuple(self.permutation) \
            if self.permutation is not None else None
        return (
            accelerator_fingerprint(self.info),
            cpu_fingerprint(self.cpu),
            self.flow_name,
            permutation,
            self.enable_cpu_tiling,
            kernel_name,
            shape,
        )

    def _compile_cached(self, kernel_name: str, shape: Tuple,
                        build: Callable[[], CompiledKernel]
                        ) -> CompiledKernel:
        """Look up / populate the kernel cache for one named kernel.

        Cache hits rebind the shared lowered module and entry point to
        this compiler's runtime knobs; generated code never mutates its
        IR, so sharing is safe.
        """
        cache = self.kernel_cache
        if cache is None:
            return build()
        kernel = cache.get_or_compile(self._cache_key(kernel_name, shape),
                                      build)
        if kernel.specialized_copies == self.specialized_copies:
            return kernel
        return replace(kernel, specialized_copies=self.specialized_copies)

    # -- kernels -----------------------------------------------------------
    def compile_matmul(self, m: int, n: int, k: int) -> CompiledKernel:
        if self.info.kernel != "linalg.matmul":
            raise CompileError(
                f"accelerator {self.info.name!r} implements "
                f"{self.info.kernel!r}, not linalg.matmul"
            )

        def build() -> CompiledKernel:
            module = build_matmul_module(m, n, k, self.info.data_type)
            return self.compile_module(
                module, "matmul_call", {"m": m, "n": n, "k": k}
            )

        return self._compile_cached("matmul_call", (m, n, k), build)

    def compile_conv(self, batch: int, in_ch: int, in_hw: int, out_ch: int,
                     f_hw: int, stride: int = 1) -> CompiledKernel:
        if self.info.kernel != "linalg.conv_2d_nchw_fchw":
            raise CompileError(
                f"accelerator {self.info.name!r} implements "
                f"{self.info.kernel!r}, not linalg.conv_2d_nchw_fchw"
            )

        def build() -> CompiledKernel:
            module = build_conv_module(batch, in_ch, in_hw, out_ch, f_hw,
                                       stride, self.info.data_type)
            return self.compile_module(
                module, "conv_call",
                {"batch": batch, "in_ch": in_ch, "in_hw": in_hw,
                 "out_ch": out_ch, "f_hw": f_hw, "stride": stride},
            )

        return self._compile_cached(
            "conv_call", (batch, in_ch, in_hw, out_ch, f_hw, stride), build
        )


def element_type(name: str):
    """Re-export for callers building custom modules from dtype names."""
    return element_type_from_string(name)
