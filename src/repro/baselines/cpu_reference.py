"""``mlir_CPU``: CPU-only reference execution.

The paper's CPU baseline is the same linalg program compiled for the
host with -O3 (tiled scalar/NEON code).  Simulating 256^3 = 16.7M inner
iterations element-by-element is not practical in Python, so the CPU
kernels are modelled analytically from the timing constants
(cycles/references/branches per multiply-accumulate, plus capacity-based
miss fractions) and executed functionally with numpy.  The analytic
counts anchor the normalized plots (Figs. 12/16) and the offload
crossover study (Fig. 10); calibration tests check the model against
the cache simulator's behaviour on small problems.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..numerics import exact_int_matmul as _exact_int_matmul
from ..soc.board import Board
from ..soc.perf import PerfCounters


def _kernel_counters(board: Board, macs: int,
                     footprint_bytes: int) -> PerfCounters:
    """Counter model shared by the dense CPU kernels."""
    timing = board.timing
    counters = PerfCounters()
    counters.cpu_cycles = macs * timing.cpu_cycles_per_mac
    counters.cache_references = macs * timing.cpu_references_per_mac
    counters.branch_instructions = macs * timing.cpu_branches_per_mac

    l1_size = board.caches.l1.size_bytes
    l2_size = board.caches.l2.size_bytes
    l1_miss_fraction = timing.cpu_l1_miss_fraction \
        if footprint_bytes > l1_size else 0.01
    counters.cache_misses = counters.cache_references * l1_miss_fraction
    l2_miss_fraction = timing.cpu_l2_miss_fraction \
        if footprint_bytes > l2_size else 0.02
    counters.l2_references = counters.cache_misses
    counters.l2_misses = counters.cache_misses * l2_miss_fraction
    counters.cpu_cycles += (
        counters.cache_misses * timing.l1_miss_penalty_cycles
        + counters.l2_misses * timing.l2_miss_penalty_cycles
    )
    counters.elapsed_seconds = timing.cpu_seconds(counters.cpu_cycles)
    return counters


def cpu_matmul(board: Board, a: np.ndarray, b: np.ndarray,
               c: Optional[np.ndarray] = None
               ) -> Tuple[np.ndarray, PerfCounters]:
    """C += A @ B on the host CPU; returns (C, modelled counters)."""
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"matmul shapes {a.shape} x {b.shape} do not agree")
    if c is None:
        c = np.zeros((m, n), dtype=a.dtype)
    c += _exact_int_matmul(a, b).astype(c.dtype) \
        if np.issubdtype(a.dtype, np.integer) else a @ b
    footprint = (m * k + k * n + m * n) * a.dtype.itemsize
    counters = _kernel_counters(board, m * n * k, footprint)
    board.counters.add(counters)
    board.clock += counters.elapsed_seconds
    return c, counters


def cpu_conv(board: Board, image: np.ndarray, weights: np.ndarray,
             stride: int = 1, out: Optional[np.ndarray] = None
             ) -> Tuple[np.ndarray, PerfCounters]:
    """NCHW/FCHW convolution on the host CPU (functional + modelled)."""
    batch, in_ch, in_h, in_w = image.shape
    out_ch, in_ch2, f_h, f_w = weights.shape
    if in_ch != in_ch2:
        raise ValueError("image/filter channel mismatch")
    out_h = (in_h - f_h) // stride + 1
    out_w = (in_w - f_w) // stride + 1
    if out is None:
        out = np.zeros((batch, out_ch, out_h, out_w), dtype=image.dtype)

    # Functional: im2col + matmul (exact in int64, cast back).
    windows = np.lib.stride_tricks.sliding_window_view(
        image, (f_h, f_w), axis=(2, 3)
    )[:, :, ::stride, ::stride]                        # B,C,OH,OW,FH,FW
    windows = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h * out_w, in_ch * f_h * f_w
    )
    kernel = weights.reshape(out_ch, in_ch * f_h * f_w)
    if np.issubdtype(image.dtype, np.integer):
        result = _exact_int_matmul(windows, kernel.T)
    else:
        result = windows @ kernel.T
    out += result.transpose(0, 2, 1).reshape(
        batch, out_ch, out_h, out_w
    ).astype(out.dtype)

    macs = batch * out_ch * out_h * out_w * in_ch * f_h * f_w
    footprint = (image.nbytes + weights.nbytes
                 + batch * out_ch * out_h * out_w * image.dtype.itemsize)
    counters = _kernel_counters(board, macs, footprint)
    board.counters.add(counters)
    board.clock += counters.elapsed_seconds
    return out, counters
