"""``cpp_MANUAL``: hand-written optimized driver code (paper Sec. IV-A).

These drivers mirror what a careful engineer writes against the SECDA-
TFLite-style runtime: loops tiled by the accelerator size only (no CPU
cache-hierarchy tiling), staging copies from bare row-major arrays, and
the fewest number of data-transfer calls for the selected dataflow.
They run against the exact same board/accelerator as the generated
code, but with :data:`~repro.runtime.CALL_STYLE_MANUAL` call overheads
and the manual (raw-array) copy cost style.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..accelerators.matmul import MATMUL_LITERALS, VERSION_OPCODES
from ..accelerators.conv import CONV_LITERALS
from ..execution.replay import replay_kernel
from ..execution.trace import (
    TRACE_COUNTERS,
    TraceUnsupported,
    record_trace,
    trace_enabled,
)
from ..runtime import AxiRuntime, CALL_STYLE_MANUAL
from ..soc.board import Board
from ..soc.perf import PerfCounters

#: DMA region sizes matching the catalog configurations.
_DMA_WORDS = 0x2_0000


def _make_runtime(board: Board) -> AxiRuntime:
    return AxiRuntime(board, call_style=CALL_STYLE_MANUAL)


#: Recorded manual-driver schedules, keyed by (kernel, knobs, specs).
#: The manual drivers are as static as the generated ones — only their
#: dma_init runs before the memref allocations, so their bodies record
#: as *preinitialized* traces that replay against the live engine.
#: ``None`` marks a body the trace machinery could not handle.
_MANUAL_TRACES: Dict[Tuple, Optional[object]] = {}

#: Configs already counted in TRACE_COUNTERS["manual_fallback"] for a
#: replay failure, so per-invocation retries (failures can be
#: board-state-dependent, and decode results are cached on the trace)
#: don't inflate the per-kernel accounting.
_MANUAL_REPLAY_FAILED = set()


def _run_manual_body(body, rt, board, before, descriptors, key,
                     plan_source=None):
    """Replay ``body`` from its recorded trace; per-tile on fallback.

    ``plan_source`` (from :meth:`repro.execution.ModelSession.plan_source`)
    makes the replay a model-session step: its metrics plane is served
    from / recorded into the session's fused ModelPlan.
    """
    if trace_enabled():
        specs = tuple((d.sizes, d.strides, d.itemsize, str(d.dtype))
                      for d in descriptors)
        cache_key = key + (specs,)
        if cache_key not in _MANUAL_TRACES:
            try:
                trace = record_trace(
                    body, specs,
                    preinitialized=(_DMA_WORDS * 4, _DMA_WORDS * 4),
                    stage="manual_record_s",
                )
                TRACE_COUNTERS["manual_recorded"] += 1
            except Exception:
                trace = None
                TRACE_COUNTERS["manual_fallback"] += 1
            _MANUAL_TRACES[cache_key] = trace
        trace = _MANUAL_TRACES[cache_key]
        if trace is not None:
            try:
                replay_kernel(trace, board, rt, descriptors, False,
                              plan_source=plan_source)
                return board.measure_since(before)
            except TraceUnsupported:
                # Count the kernel once, but keep retrying: replay
                # refusals can be board-state-dependent, and repeated
                # attempts are cheap (decode caches its verdict).
                if cache_key not in _MANUAL_REPLAY_FAILED:
                    _MANUAL_REPLAY_FAILED.add(cache_key)
                    TRACE_COUNTERS["manual_fallback"] += 1
    body(rt, *descriptors)
    return board.measure_since(before)


def _matmul_literals_for(version: int, flow: str) -> Dict[str, int]:
    """The opcodes a manual driver uses for one (version, flow) pair."""
    available = VERSION_OPCODES[version]
    needs = {
        (1, "Ns"): ("sAsBcCrC",),
        (2, "Ns"): ("sA", "sB", "cCrC"),
        (2, "As"): ("sA", "sB", "cCrC"),
        (2, "Bs"): ("sA", "sB", "cCrC"),
        (3, "Ns"): ("sA", "sB", "cC", "rC"),
        (3, "As"): ("sA", "sB", "cC", "rC"),
        (3, "Bs"): ("sA", "sB", "cC", "rC"),
        (3, "Cs"): ("sA", "sB", "cC", "rC"),
    }
    needs[(4, "Ns")] = needs[(3, "Ns")]
    needs[(4, "As")] = needs[(3, "As")]
    needs[(4, "Bs")] = needs[(3, "Bs")]
    needs[(4, "Cs")] = needs[(3, "Cs")]
    key = (version, flow)
    if key not in needs:
        raise ValueError(f"v{version} has no manual {flow} driver")
    missing = [n for n in needs[key] if n not in available]
    if missing:
        raise ValueError(f"v{version} does not support opcodes {missing}")
    return {name: MATMUL_LITERALS[name] for name in needs[key]}


def manual_matmul_driver(
    board: Board,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    version: int,
    size: int,
    flow: str = "Ns",
    tiles: Optional[Tuple[int, int, int]] = None,
    plan_source=None,
) -> PerfCounters:
    """Drive a Table I accelerator by hand; C += A @ B.

    ``tiles`` overrides the square tile for flexible (v4) accelerators.
    ``plan_source`` optionally joins the offload to a model session
    (see :func:`_run_manual_body`).  Returns the perf counter delta of
    the whole offload (including DMA initialization, as measured in the
    paper's task-clock).
    """
    m, k = a.shape
    k2, n = b.shape
    if (k2, (m, n)) != (k, c.shape):
        raise ValueError("matmul operand shapes do not agree")
    tile_m, tile_n, tile_k = tiles or (size, size, size)
    for extent, tile, label in ((m, tile_m, "M"), (n, tile_n, "N"),
                                (k, tile_k, "K")):
        if extent % tile:
            raise ValueError(f"{label}={extent} not divisible by tile {tile}")

    literals = _matmul_literals_for(version, flow)
    if flow == "Cs" and "cC" not in literals:
        raise ValueError("Cs flow needs a separate cC opcode (v3/v4)")
    if flow not in ("Ns", "As", "Bs", "Cs"):
        raise ValueError(f"unknown flow {flow!r}")

    def body(rt, desc_a, desc_b, desc_c):
        if version == 4:
            offset = rt.send_literal(MATMUL_LITERALS["cfg"], 0)
            offset = rt.send_idx(tile_m, offset)
            offset = rt.send_idx(tile_n, offset)
            offset = rt.send_idx(tile_k, offset)
            rt.flush_send(offset)
        else:
            rt.flush_send(rt.send_literal(MATMUL_LITERALS["reset"], 0))

        def send_a(mi: int, ki: int, offset: int) -> int:
            offset = rt.send_literal(literals["sA"], offset)
            rt.subview_setup()
            return rt.send_memref(
                desc_a.subview((mi, ki), (tile_m, tile_k)), offset
            )

        def send_b(ki: int, ni: int, offset: int) -> int:
            offset = rt.send_literal(literals["sB"], offset)
            rt.subview_setup()
            return rt.send_memref(
                desc_b.subview((ki, ni), (tile_k, tile_n)), offset
            )

        def recv_c(mi: int, ni: int, compute_literal: Optional[int],
                   recv_literal: int, offset: int) -> None:
            if compute_literal is not None:
                offset = rt.send_literal(compute_literal, offset)
            offset = rt.send_literal(recv_literal, offset)
            rt.flush_send(offset)
            rt.subview_setup()
            rt.recv_memref(desc_c.subview((mi, ni), (tile_m, tile_n)), 0,
                           accumulate=True)

        if version == 1:
            for mi in range(0, m, tile_m):
                rt.loop_iteration()
                for ni in range(0, n, tile_n):
                    rt.loop_iteration()
                    for ki in range(0, k, tile_k):
                        rt.loop_iteration()
                        offset = rt.send_literal(literals["sAsBcCrC"], 0)
                        rt.subview_setup()
                        offset = rt.send_memref(
                            desc_a.subview((mi, ki), (tile_m, tile_k)),
                            offset
                        )
                        rt.subview_setup()
                        offset = rt.send_memref(
                            desc_b.subview((ki, ni), (tile_k, tile_n)),
                            offset
                        )
                        rt.flush_send(offset)
                        rt.subview_setup()
                        rt.recv_memref(
                            desc_c.subview((mi, ni), (tile_m, tile_n)), 0,
                            accumulate=True,
                        )
            return

        compute = literals.get("cC")
        recv_lit = literals["rC"] if "rC" in literals \
            else literals["cCrC"]
        compute_for_recv = compute if "rC" in literals else None

        if flow == "Ns":
            for mi in range(0, m, tile_m):
                rt.loop_iteration()
                for ni in range(0, n, tile_n):
                    rt.loop_iteration()
                    for ki in range(0, k, tile_k):
                        rt.loop_iteration()
                        offset = send_a(mi, ki, 0)
                        offset = send_b(ki, ni, offset)
                        recv_c(mi, ni, compute_for_recv, recv_lit, offset)
        elif flow == "As":
            for mi in range(0, m, tile_m):
                rt.loop_iteration()
                for ki in range(0, k, tile_k):
                    rt.loop_iteration()
                    offset = send_a(mi, ki, 0)
                    rt.flush_send(offset)
                    for ni in range(0, n, tile_n):
                        rt.loop_iteration()
                        offset = send_b(ki, ni, 0)
                        recv_c(mi, ni, compute_for_recv, recv_lit, offset)
        elif flow == "Bs":
            for ni in range(0, n, tile_n):
                rt.loop_iteration()
                for ki in range(0, k, tile_k):
                    rt.loop_iteration()
                    offset = send_b(ki, ni, 0)
                    rt.flush_send(offset)
                    for mi in range(0, m, tile_m):
                        rt.loop_iteration()
                        offset = send_a(mi, ki, 0)
                        recv_c(mi, ni, compute_for_recv, recv_lit, offset)
        else:  # Cs
            for mi in range(0, m, tile_m):
                rt.loop_iteration()
                for ni in range(0, n, tile_n):
                    rt.loop_iteration()
                    for ki in range(0, k, tile_k):
                        rt.loop_iteration()
                        offset = send_a(mi, ki, 0)
                        offset = send_b(ki, ni, offset)
                        offset = rt.send_literal(compute, offset)
                        rt.flush_send(offset)
                    offset = rt.send_literal(literals["rC"], 0)
                    rt.flush_send(offset)
                    rt.subview_setup()
                    rt.recv_memref(
                        desc_c.subview((mi, ni), (tile_m, tile_n)), 0,
                        accumulate=True,
                    )

    rt = _make_runtime(board)
    before = board.snapshot()
    rt.dma_init(0, 0, _DMA_WORDS * 4, 0, _DMA_WORDS * 4)

    desc_a = rt.make_memref(a, "A")
    desc_b = rt.make_memref(b, "B")
    desc_c = rt.make_memref(c, "C")

    key = ("matmul", version, size, flow, (tile_m, tile_n, tile_k))
    return _run_manual_body(body, rt, board, before,
                            [desc_a, desc_b, desc_c], key,
                            plan_source=plan_source)


def manual_conv_driver(
    board: Board,
    image: np.ndarray,
    weights: np.ndarray,
    out: np.ndarray,
    stride: int = 1,
    plan_source=None,
) -> PerfCounters:
    """Drive the conv accelerator by hand (filter/output stationary).

    ``plan_source`` optionally joins the offload to a model session
    (see :func:`_run_manual_body`).
    """
    batch, in_ch, in_h, in_w = image.shape
    out_ch, in_ch2, f_h, f_w = weights.shape
    if in_ch != in_ch2:
        raise ValueError("image/filter channel mismatch")
    _, out_ch2, out_h, out_w = out.shape
    if out_ch != out_ch2:
        raise ValueError("filter/output channel mismatch")

    def body(rt, desc_i, desc_w, desc_o):
        offset = rt.send_literal(CONV_LITERALS["cfg_fsize"], 0)
        offset = rt.send_idx(f_h, offset)
        offset = rt.send_literal(CONV_LITERALS["cfg_ic"], offset)
        offset = rt.send_idx(in_ch, offset)
        rt.flush_send(offset)

        for bi in range(batch):
            rt.loop_iteration()
            for oc in range(out_ch):
                rt.loop_iteration()
                offset = rt.send_literal(CONV_LITERALS["sF"], 0)
                rt.subview_setup()
                offset = rt.send_memref(
                    desc_w.subview((oc, 0, 0, 0), (1, in_ch, f_h, f_w)),
                    offset
                )
                rt.flush_send(offset)
                for oh in range(out_h):
                    rt.loop_iteration()
                    for ow in range(out_w):
                        rt.loop_iteration()
                        offset = rt.send_literal(CONV_LITERALS["sIcO"], 0)
                        rt.subview_setup()
                        offset = rt.send_memref(
                            desc_i.subview(
                                (bi, 0, oh * stride, ow * stride),
                                (1, in_ch, f_h, f_w),
                            ),
                            offset,
                        )
                        rt.flush_send(offset)
                offset = rt.send_literal(CONV_LITERALS["rO"], 0)
                rt.flush_send(offset)
                rt.subview_setup()
                rt.recv_memref(
                    desc_o.subview((bi, oc, 0, 0), (1, 1, out_h, out_w)),
                    0, accumulate=True,
                )

    rt = _make_runtime(board)
    before = board.snapshot()
    rt.dma_init(0, 0, _DMA_WORDS * 4, 0, _DMA_WORDS * 4)

    desc_i = rt.make_memref(image, "I")
    desc_w = rt.make_memref(weights, "W")
    desc_o = rt.make_memref(out, "O")

    key = ("conv", stride)
    return _run_manual_body(body, rt, board, before,
                            [desc_i, desc_w, desc_o], key,
                            plan_source=plan_source)
