"""Baselines: hand-written drivers and CPU-only reference execution.

* :mod:`repro.baselines.cpu_reference` — ``mlir_CPU``: the problem run
  entirely on the host CPU (tiled/-O3-style), modelled analytically and
  executed functionally with numpy;
* :mod:`repro.baselines.manual` — ``cpp_MANUAL``: hand-written optimized
  driver code in the style of the SECDA-TFLite toolkit (Sec. IV-A):
  accelerator-size tiling only, bare-array staging, and the fewest
  number of transfer calls for the selected dataflow.
"""

from .cpu_reference import cpu_conv, cpu_matmul
from .manual import manual_conv_driver, manual_matmul_driver

__all__ = [
    "cpu_conv", "cpu_matmul",
    "manual_conv_driver", "manual_matmul_driver",
]
