"""Static host-accelerator traffic prediction from a lowering plan.

Given the :class:`~repro.transforms.lower_to_accel.LoweringPlan` the
compiler produced, predict exactly how many bytes each direction of the
DMA link will carry and how many transactions the driver will issue —
without executing anything.  Tests validate the prediction against the
simulation's measured counters exactly (for single-level tiling), which
pins down the code generator's communication behaviour.

For the matmul flows this reduces to the closed forms that the
Sec. IV-C heuristics (:mod:`repro.heuristics.flexible`) optimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..opcodes import Opcode, OpcodeMap, Recv, Send, SendDim, SendIdx, \
    SendLiteral
from ..transforms.flow_analysis import PlacedGroup, PlacedOpcode
from ..transforms.lower_to_accel import LoweringPlan, _result_tile_size


class TrafficUnsupported(ValueError):
    """The plan uses an option the traffic model does not cover.

    ``option`` names the offending lowering option (machine-readable,
    e.g. ``"enable_cpu_tiling"``) and ``detail`` the specific instance
    (e.g. the CPU-tiled dim), so callers like the sweep pruner can
    count-and-skip per option instead of string-matching the message.
    Subclasses ``ValueError`` for compatibility with pre-existing
    callers that catch the old bare error.
    """

    def __init__(self, message: str, option: str,
                 detail: str = "") -> None:
        super().__init__(message)
        self.option = option
        self.detail = detail


@dataclass(frozen=True)
class TrafficEstimate:
    """Predicted DMA behaviour of one generated kernel execution."""

    bytes_to_accel: int
    bytes_from_accel: int
    send_transactions: int
    recv_transactions: int
    #: Per-opcode firing counts.
    executions: Dict[str, int] = field(default_factory=dict)

    @property
    def dma_transactions(self) -> int:
        return self.send_transactions + self.recv_transactions


class _Estimator:
    def __init__(self, plan: LoweringPlan, opcode_map: OpcodeMap,
                 operand_maps, itemsize: int):
        self.plan = plan
        self.opcode_map = opcode_map
        self.operand_maps = operand_maps
        self.itemsize = itemsize
        self.bytes_to = 0
        self.bytes_from = 0
        self.send_txn = 0
        self.recv_txn = 0
        self.executions: Dict[str, int] = {}

    # -- geometry -----------------------------------------------------------
    def trips(self, level: int) -> int:
        """Loop iterations enclosing a placement at ``level``."""
        total = 1
        for position in range(level + 1):
            dim = self.plan.loop_order[position]
            total *= self.plan.extents[dim] // self.plan.tiles[dim]
        return total

    def tile_elements(self, arg: int, level: int) -> int:
        """Subview elements of operand ``arg`` at placement ``level``.

        Mirrors the emitter: opened dims (position <= level) contribute
        one tile; deeper host dims are aggregated wholesale;
        accelerator-internal dims contribute their full tile.
        """
        plan = self.plan
        open_dims = set(plan.loop_order[:level + 1])
        effective: Dict[str, int] = {}
        for dim in plan.dim_names:
            if dim in open_dims or dim not in plan.loop_order:
                effective[dim] = plan.tiles[dim]
            else:
                effective[dim] = plan.extents[dim]
        amap = self.operand_maps[arg]
        elements = 1
        for expr in amap.results:
            elements *= _result_tile_size(expr, effective, plan.dim_names)
        return elements

    # -- one opcode firing -----------------------------------------------------
    def opcode_effects(self, opcode: Opcode, level: int):
        """(send_bytes, recv_bytes, recv_count, flushes) per firing.

        ``flushes`` counts the ``flush_send`` calls the emitter inserts
        *inside* the opcode's action list (one before each receive when
        data is staged).
        """
        send_bytes = 0
        recv_bytes = 0
        recv_count = 0
        flushes = 0
        staged = False
        for action in opcode.actions:
            if isinstance(action, (SendLiteral, SendDim, SendIdx)):
                send_bytes += 4
                staged = True
            elif isinstance(action, Send):
                send_bytes += self.itemsize * self.tile_elements(
                    action.arg, level
                )
                staged = True
            elif isinstance(action, Recv):
                if staged:
                    flushes += 1
                    staged = False
                recv_bytes += self.itemsize * self.tile_elements(
                    action.arg, level
                )
                recv_count += 1
        return send_bytes, recv_bytes, recv_count, flushes, staged

    # -- scope walk -----------------------------------------------------------
    def visit(self, group: PlacedGroup) -> None:
        fires = self.trips(group.level)
        staged = False
        for item in group.items:
            if isinstance(item, PlacedOpcode):
                opcode = self.opcode_map[item.name]
                sends, recvs, recv_count, flushes, leaves_staged = \
                    self.opcode_effects(opcode, item.level)
                # A flush inside the opcode also drains earlier staging.
                if flushes and staged:
                    staged = False
                self.executions[item.name] = \
                    self.executions.get(item.name, 0) + fires
                self.bytes_to += sends * fires
                self.bytes_from += recvs * fires
                self.send_txn += flushes * fires
                self.recv_txn += recv_count * fires
                staged = staged or leaves_staged
            else:
                if staged:
                    self.send_txn += fires
                    staged = False
                self.visit(item)
        if staged:
            self.send_txn += fires

    def visit_init(self) -> None:
        init_flow = self.plan.init_flow
        if init_flow is None:
            return
        staged = False
        for name in init_flow.opcode_names():
            opcode = self.opcode_map[name]
            sends, recvs, recv_count, flushes, leaves_staged = \
                self.opcode_effects(opcode, -1)
            self.executions[name] = self.executions.get(name, 0) + 1
            self.bytes_to += sends
            self.bytes_from += recvs
            self.send_txn += flushes
            self.recv_txn += recv_count
            staged = staged or leaves_staged
        if staged:
            self.send_txn += 1


def estimate_traffic(plan: LoweringPlan, opcode_map: OpcodeMap,
                     operand_maps, itemsize: int = 4) -> TrafficEstimate:
    """Predict DMA bytes and transactions for one kernel execution.

    Requires a plan compiled with ``enable_cpu_tiling=False`` (the
    multi-level trip-count algebra of CPU-tiled nests is not modelled).
    """
    for dim in plan.loop_order:
        if plan.cpu_tiles.get(dim, plan.extents[dim]) != plan.extents[dim]:
            raise TrafficUnsupported(
                "traffic estimation requires enable_cpu_tiling=False "
                f"(dim {dim!r} is CPU-tiled)",
                option="enable_cpu_tiling", detail=dim,
            )
    estimator = _Estimator(plan, opcode_map, operand_maps, itemsize)
    estimator.visit_init()
    estimator.visit(plan.placement.root)
    return TrafficEstimate(
        bytes_to_accel=estimator.bytes_to,
        bytes_from_accel=estimator.bytes_from,
        send_transactions=estimator.send_txn,
        recv_transactions=estimator.recv_txn,
        executions=dict(estimator.executions),
    )
