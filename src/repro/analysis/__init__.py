"""Static analyses over lowering plans."""

from .traffic import TrafficEstimate, TrafficUnsupported, estimate_traffic

__all__ = ["TrafficEstimate", "TrafficUnsupported", "estimate_traffic"]
