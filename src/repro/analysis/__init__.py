"""Static analyses over lowering plans."""

from .traffic import TrafficEstimate, estimate_traffic

__all__ = ["TrafficEstimate", "estimate_traffic"]
