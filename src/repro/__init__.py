"""AXI4MLIR reproduction: user-driven automatic host code generation for
custom AXI-based accelerators (CGO 2024), on a simulated PYNQ-Z2-class SoC.

Public API tour:

* :class:`repro.compiler.AXI4MLIRCompiler` — configuration in, executable
  host driver out;
* :mod:`repro.accelerators` — the Table I accelerator library + conv engine,
  with ready-made configuration files;
* :mod:`repro.soc` — the simulated board (caches, DMA, AXI-Stream, perf);
* :mod:`repro.baselines` — ``cpp_MANUAL`` drivers and ``mlir_CPU`` reference;
* :mod:`repro.heuristics` — flexible-tiling/dataflow selection (Sec. IV-C);
* :mod:`repro.frontends` — ResNet18 conv layers and TinyBERT.
"""

from .accel_config import (
    AcceleratorInfo,
    ConfigError,
    CPUInfo,
    DMAConfig,
    SystemConfig,
    load_config,
    parse_config,
)
from .compiler import (
    AXI4MLIRCompiler,
    CompiledKernel,
    KernelCache,
    build_conv_module,
    build_matmul_module,
    default_kernel_cache,
)
from .runtime import AxiRuntime, MemRefDescriptor
from .soc import Board, PerfCounters, TimingModel, make_pynq_z2
from .transforms import CompileError

__version__ = "1.0.0"

__all__ = [
    "AcceleratorInfo", "ConfigError", "CPUInfo", "DMAConfig",
    "SystemConfig", "load_config", "parse_config",
    "AXI4MLIRCompiler", "CompiledKernel", "KernelCache",
    "build_conv_module", "build_matmul_module", "default_kernel_cache",
    "AxiRuntime", "MemRefDescriptor",
    "Board", "PerfCounters", "TimingModel", "make_pynq_z2",
    "CompileError",
    "__version__",
]
