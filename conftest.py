"""Suite-wide pytest configuration.

The SoC simulation allocates millions of short-lived, acyclic objects
(line lists, tile descriptors, staging arrays); CPython's default gen-0
threshold of 700 makes the cyclic collector scan constantly for garbage
that reference counting already reclaims.  Raising the thresholds cuts
tier-1 wall-clock by roughly a third — cycles (IR graphs, cached
kernels) are still collected, just in larger strides.
"""

import gc

gc.set_threshold(200_000, 100, 100)
