"""Ahead-of-time trace synthesis: structural + replay equivalence.

Contracts under test:

* ``synthesize_trace`` (schedule side table → DriverTrace, no driver
  execution) produces a trace **structurally identical** to what
  ``record_trace`` builds by shadow-running the emitted driver — every
  event table, tile class, staged item, and disjointness flag —
  across flows, tilings (4/8/flexible), conv, and CPU tiling.
* Replaying a synthesized trace is **bit-identical** to replaying a
  recorded one (and, transitively via test_trace_replay, to per-tile
  execution) for counters, outputs, and board state.
* The benchmark configurations take the synthesis path — no silent
  fallback to recording.
* Unsupported schedules fall back to recording; ``REPRO_NO_SYNTH=1``
  forces recording; ``REPRO_TRACE_CHECK=1`` records every synthesized
  kernel and raises :class:`TraceMismatch` on any divergence.
* The hand-written manual drivers replay their recorded
  (preinitialized) traces bit-identically to per-tile execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerators import (
    ConvAccelerator,
    MatMulAccelerator,
    make_conv_system,
    make_matmul_system,
)
from repro.baselines.manual import manual_conv_driver, manual_matmul_driver
from repro.codegen import schedule_event_count
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.execution import TRACE_COUNTERS, diagnostics
from repro.execution.synthesize import (
    SynthesisUnsupported,
    TraceMismatch,
    diff_traces,
    synthesize_trace,
)
from repro.execution.trace import record_trace
from repro.soc import make_pynq_z2


def _specs(shapes, dtype=np.int32):
    """Row-major arg specs exactly as CompiledKernel.run builds them."""
    itemsize = np.dtype(dtype).itemsize
    out = []
    for shape in shapes:
        strides = [1] * len(shape)
        for axis in range(len(shape) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * shape[axis + 1]
        out.append((tuple(shape), tuple(strides), itemsize,
                    str(np.dtype(dtype))))
    return tuple(out)


def _compile_matmul(version, size, flow, m, n, k, accel_size=None,
                    cpu_tiling=True):
    _, info = make_matmul_system(version, size, flow=flow,
                                 accel_size=accel_size)
    compiler = AXI4MLIRCompiler(info, kernel_cache=KernelCache(),
                                enable_cpu_tiling=cpu_tiling)
    return compiler.compile_matmul(m, n, k)


def _assert_synth_matches_recording(kernel, shapes):
    specs = _specs(shapes)
    synthesized = synthesize_trace(kernel.schedule_table, specs)
    recorded = record_trace(
        kernel.entry_point, specs,
        expected_events=schedule_event_count(kernel.schedule_table),
    )
    assert diff_traces(synthesized, recorded) == []


MATMUL_CONFIGS = [
    # version, size, flow, (m, n, k), accel_size, cpu_tiling
    (1, 4, "Ns", (16, 16, 16), None, True),
    (2, 4, "As", (32, 32, 32), None, True),
    (2, 8, "Bs", (32, 32, 32), None, True),
    (3, 4, "Ns", (24, 16, 32), None, True),
    (3, 8, "As", (64, 64, 64), None, True),
    (3, 8, "Cs", (64, 64, 64), None, True),
    (4, 4, "As", (64, 64, 128), (32, 16, 64), True),
    (3, 4, "As", (256, 256, 256), None, True),   # CPU tiling kicks in
    (3, 4, "Ns", (64, 64, 64), None, False),
]


class TestStructuralIdentity:
    @pytest.mark.parametrize(
        "version,size,flow,dims,accel_size,cpu_tiling", MATMUL_CONFIGS
    )
    def test_matmul_synthesis_equals_recording(
        self, version, size, flow, dims, accel_size, cpu_tiling
    ):
        m, n, k = dims
        kernel = _compile_matmul(version, size, flow, m, n, k,
                                 accel_size=accel_size,
                                 cpu_tiling=cpu_tiling)
        _assert_synth_matches_recording(
            kernel, [(m, k), (k, n), (m, n)]
        )

    def test_conv_synthesis_equals_recording(self):
        _, info = make_conv_system(2, 3)
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_conv(1, 2, 8, 2, 3)
        _assert_synth_matches_recording(
            kernel, [(1, 2, 8, 8), (2, 2, 3, 3), (1, 2, 6, 6)]
        )

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        version=st.sampled_from([2, 3]),
        flow=st.sampled_from(["Ns", "As", "Bs"]),
        tiles_m=st.integers(1, 5),
        tiles_n=st.integers(1, 5),
        tiles_k=st.integers(1, 5),
    )
    def test_synthesis_property(self, version, flow, tiles_m, tiles_n,
                                tiles_k):
        size = 4
        m, n, k = size * tiles_m, size * tiles_n, size * tiles_k
        kernel = _compile_matmul(version, size, flow, m, n, k)
        _assert_synth_matches_recording(kernel, [(m, k), (k, n), (m, n)])


def _run_kernel(kernel, hw, m, n, k, runs=1):
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    rng = np.random.default_rng(17)
    a = rng.integers(-7, 7, (m, k)).astype(np.int32)
    b = rng.integers(-7, 7, (k, n)).astype(np.int32)
    c = np.zeros((m, n), np.int32)
    counters = None
    for _ in range(runs):
        counters = kernel.run(board, a, b, c)
    caches = board.caches
    return (
        counters.as_dict(), c.tobytes(), board.clock,
        (caches.l1.hits, caches.l1.misses, caches.l2.hits,
         caches.l2.misses),
        [tuple(ways) for ways in caches.l1._sets],
        (hw.total_cycles, hw.instructions_executed),
        board.dma.input_words.tobytes(),
        board.dma.output_words.tobytes(),
    )


class TestReplayEquivalence:
    @pytest.mark.parametrize("version,size,flow", [
        (2, 4, "As"), (3, 8, "Cs"), (1, 4, "Ns"),
    ])
    def test_synthesized_replay_matches_recorded_replay(
        self, version, size, flow, monkeypatch
    ):
        m = n = k = 32

        def measure():
            hw, info = make_matmul_system(version, size, flow=flow)
            kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
                .compile_matmul(m, n, k)
            return _run_kernel(kernel, hw, m, n, k, runs=2)

        synthesized = measure()
        monkeypatch.setenv("REPRO_NO_SYNTH", "1")
        recorded = measure()
        assert synthesized == recorded


class TestTraceSources:
    def test_benchmark_configs_take_synthesis_path(self):
        """No benchmark kernel silently falls back to recording."""
        before = dict(TRACE_COUNTERS)
        configs = [
            # The figure-grid matmul families (dims=64 column).
            (2, 8, "Ns", 64), (3, 8, "As", 64), (3, 8, "Bs", 64),
            (3, 16, "Cs", 64), (1, 8, "Ns", 64),
            # CPU-tiled ablation shape (affine inner-loop bounds).
            (3, 4, "As", 256),
        ]
        for version, size, flow, dims in configs:
            hw, info = make_matmul_system(version, size, flow=flow)
            board = make_pynq_z2()
            board.attach_accelerator(hw)
            kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
                .compile_matmul(dims, dims, dims)
            rng = np.random.default_rng(1)
            a = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
            b = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
            kernel.run(board, a, b, np.zeros((dims, dims), np.int32))
        # Flexible (v4 cfg) and conv benchmark families.
        hw, info = make_matmul_system(4, 16, flow="As",
                                      accel_size=(32, 16, 64))
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_matmul(64, 64, 128)
        rng = np.random.default_rng(2)
        a = rng.integers(-5, 5, (64, 128)).astype(np.int32)
        b = rng.integers(-5, 5, (128, 64)).astype(np.int32)
        kernel.run(board, a, b, np.zeros((64, 64), np.int32))
        hw, info = make_conv_system(2, 3)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_conv(1, 2, 8, 2, 3)
        image = rng.integers(-4, 4, (1, 2, 8, 8)).astype(np.int32)
        weights = rng.integers(-4, 4, (2, 2, 3, 3)).astype(np.int32)
        kernel.run(board, image, weights,
                   np.zeros((1, 2, 6, 6), np.int32))

        assert TRACE_COUNTERS["synthesized"] - before["synthesized"] == 8
        assert TRACE_COUNTERS["recorded"] == before["recorded"]
        assert TRACE_COUNTERS["synth_fallback"] == before["synth_fallback"]

    def test_no_schedule_table_falls_back_to_recording(self):
        hw, info = make_matmul_system(3, 8, flow="Ns")
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_matmul(16, 16, 16)
        kernel.schedule_table = None
        before = dict(TRACE_COUNTERS)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(4)
        a = rng.integers(-5, 5, (16, 16)).astype(np.int32)
        b = rng.integers(-5, 5, (16, 16)).astype(np.int32)
        c = np.zeros((16, 16), np.int32)
        kernel.run(board, a, b, c)
        assert np.array_equal(c, a.astype(np.int64) @ b.astype(np.int64))
        assert TRACE_COUNTERS["synth_fallback"] \
            == before["synth_fallback"] + 1
        assert TRACE_COUNTERS["recorded"] == before["recorded"] + 1

    def test_kill_switch_forces_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SYNTH", "1")
        hw, info = make_matmul_system(3, 8, flow="Ns")
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_matmul(16, 16, 16)
        before = dict(TRACE_COUNTERS)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(4)
        a = rng.integers(-5, 5, (16, 16)).astype(np.int32)
        b = rng.integers(-5, 5, (16, 16)).astype(np.int32)
        kernel.run(board, a, b, np.zeros((16, 16), np.int32))
        assert TRACE_COUNTERS["recorded"] == before["recorded"] + 1
        assert TRACE_COUNTERS["synthesized"] == before["synthesized"]

    def test_diagnostics_shape(self):
        report = diagnostics()
        assert set(report) == {"stage_timings", "trace_sources",
                               "metrics_plan", "model_plan", "store",
                               "tuning", "faults", "native", "service"}
        assert "trace_synth_s" in report["stage_timings"]
        assert "manual_record_s" in report["stage_timings"]
        assert "metrics_plan_build_s" in report["stage_timings"]
        assert "metrics_plan_apply_s" in report["stage_timings"]
        assert "model_plan_build_s" in report["stage_timings"]
        assert "model_plan_apply_s" in report["stage_timings"]
        assert set(report["trace_sources"]) == {
            "synthesized", "recorded", "synth_fallback", "disk_loaded",
            "manual_recorded", "manual_fallback",
        }
        assert set(report["metrics_plan"]) == {
            "metrics_plan_hits", "metrics_plan_misses",
            "metrics_plan_fallback", "plan_incremental_hits",
            "component_memo_hits", "component_memo_misses",
        }
        assert set(report["model_plan"]) == {
            "model_plan_hits", "model_plan_misses",
            "model_plan_step_hits", "model_plan_fallback",
            "model_plan_divergence", "model_plan_stale",
            "model_plan_workers",
        }


class TestCrossCheck:
    def test_cross_check_passes_on_sound_schedule(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CHECK", "1")
        hw, info = make_matmul_system(3, 8, flow="As")
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_matmul(32, 32, 32)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(9)
        a = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        b = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        c = np.zeros((32, 32), np.int32)
        kernel.run(board, a, b, c)
        assert np.array_equal(c, a.astype(np.int64) @ b.astype(np.int64))

    def test_cross_check_raises_on_divergent_schedule(self, monkeypatch):
        """A side table that disagrees with the driver fails loudly."""
        monkeypatch.setenv("REPRO_TRACE_CHECK", "1")
        hw, info = make_matmul_system(3, 8, flow="As")
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_matmul(32, 32, 32)
        # Corrupt one staged literal in the side table: synthesis will
        # happily expand it, but the recorded driver disagrees.
        constants = kernel.schedule_table["constants"]
        for name, value in constants.items():
            if value == 34:  # the sA opcode literal
                constants[name] = 35
                break
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(9)
        a = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        b = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        with pytest.raises(TraceMismatch):
            kernel.run(board, a, b, np.zeros((32, 32), np.int32))

    def test_synthesizer_rejects_old_style_tables(self):
        with pytest.raises(SynthesisUnsupported):
            synthesize_trace({"op": "func", "body": []},
                             _specs([(4, 4)]))


def _board_state(board, hw):
    caches = board.caches
    return {
        "clock": board.clock,
        "accel_ready_at": board.accel_ready_at,
        "dma_busy_until": board.dma_busy_until,
        "l1": (caches.l1.hits, caches.l1.misses),
        "l2": (caches.l2.hits, caches.l2.misses),
        "l1_sets": [tuple(ways) for ways in caches.l1._sets],
        "l2_sets": [tuple(ways) for ways in caches.l2._sets],
        "accel": (hw.total_cycles, hw.instructions_executed),
        "in_region": board.dma.input_words.tobytes(),
        "out_region": board.dma.output_words.tobytes(),
    }


class TestManualDriverTracing:
    """The hand-written baselines ride the same trace machinery."""

    @pytest.mark.parametrize("version,size,flow,dims,tiles", [
        (1, 4, "Ns", 16, None),
        (2, 8, "Ns", 32, None),
        (2, 8, "As", 32, None),
        (3, 8, "Bs", 32, None),
        (3, 8, "Cs", 32, None),
        (4, 4, "As", 32, (8, 4, 8)),
    ])
    def test_manual_matmul_traced_is_bit_identical(
        self, version, size, flow, dims, tiles, monkeypatch
    ):
        def measure(no_trace):
            if no_trace:
                monkeypatch.setenv("REPRO_NO_TRACE", "1")
            else:
                monkeypatch.delenv("REPRO_NO_TRACE", raising=False)
            board = make_pynq_z2()
            hw = MatMulAccelerator(size, version)
            board.attach_accelerator(hw)
            rng = np.random.default_rng(3)
            a = rng.integers(-6, 6, (dims, dims)).astype(np.int32)
            b = rng.integers(-6, 6, (dims, dims)).astype(np.int32)
            c = np.zeros((dims, dims), np.int32)
            counters = manual_matmul_driver(board, a, b, c, version,
                                            size, flow, tiles=tiles)
            return counters.as_dict(), c.tobytes(), _board_state(board, hw)

        before = dict(TRACE_COUNTERS)
        reference = measure(no_trace=True)
        traced = measure(no_trace=False)
        assert reference == traced
        assert TRACE_COUNTERS["manual_fallback"] \
            == before["manual_fallback"], "manual driver left replay path"

    def test_manual_conv_traced_is_bit_identical(self, monkeypatch):
        def measure(no_trace):
            if no_trace:
                monkeypatch.setenv("REPRO_NO_TRACE", "1")
            else:
                monkeypatch.delenv("REPRO_NO_TRACE", raising=False)
            board = make_pynq_z2()
            hw = ConvAccelerator(4, 3, max_slice=64)
            board.attach_accelerator(hw)
            rng = np.random.default_rng(5)
            image = rng.integers(-4, 4, (1, 2, 10, 10)).astype(np.int32)
            weights = rng.integers(-4, 4, (3, 2, 3, 3)).astype(np.int32)
            out = np.zeros((1, 3, 8, 8), np.int32)
            counters = manual_conv_driver(board, image, weights, out)
            return counters.as_dict(), out.tobytes(), \
                _board_state(board, hw)

        reference = measure(no_trace=True)
        traced = measure(no_trace=False)
        assert reference == traced
