"""Bit-identity of the cached metrics plane (repro.execution.metrics).

The contract under test: applying a cached :class:`MetricsPlan` (the
O(state) path a fingerprint hit takes) produces **bit-identical**
results to evaluating the live metrics plane on every invocation (the
``REPRO_NO_METRICS_PLAN=1`` path) — PerfCounters, output arrays, the
board clock, cache hit/miss totals *and* final LRU contents, the DMA
staging regions, and the accelerator statistics.

Each scenario runs the same kernel twice on two *fresh* boards: the
first invocation builds and caches the plan, the second starts from an
identical board state and must take the plan-hit path (asserted via the
``metrics_plan_hits`` counter).  The kill-switch run recomputes the
metrics plane live both times; the resulting states must agree
bit-for-bit.
"""

import os
import uuid

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerators import make_conv_system, make_matmul_system
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.execution import (
    METRICS_PLAN_COUNTERS,
    MetricsPlanMismatch,
    reset_model_plans,
)
from repro.execution.metrics import reset_component_memo
from repro.runtime import DoubleBufferedRuntime
from repro.soc import make_pynq_z2
from repro.soc._native import native_lib

from test_trace_replay import _board_state


def _measure_matmul(kernel, hw_factory, m, n, k, runs=2, seed=3,
                    runtime_cls=None):
    """Run ``runs`` invocations, each on a fresh board; return states."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-7, 7, (m, k)).astype(np.int32)
    b = rng.integers(-7, 7, (k, n)).astype(np.int32)
    states = []
    for _ in range(runs):
        hw = hw_factory()
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        c = np.zeros((m, n), np.int32)
        rt = runtime_cls(board) if runtime_cls else None
        counters = kernel.run(board, a, b, c, runtime=rt)
        states.append((counters.as_dict(), c.tobytes(),
                       _board_state(board, hw)))
    return states


def _matmul_setup(version, size, flow, m, n, k, **compiler_kwargs):
    hw, info = make_matmul_system(version, size, flow=flow)
    kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache(),
                              **compiler_kwargs).compile_matmul(m, n, k)
    return kernel, lambda: make_matmul_system(version, size, flow=flow)[0]


MATMUL_CONFIGS = [
    # The benchmark suite's flow strategies and tilings.
    (1, 4, "Ns", 16, 16, 16),
    (2, 8, "As", 32, 32, 32),
    (3, 8, "Bs", 32, 32, 32),
    (3, 8, "Cs", 32, 16, 64),
    (3, 16, "Ns", 64, 64, 64),
]


class TestPlanBitIdentity:
    @pytest.mark.parametrize("version,size,flow,m,n,k", MATMUL_CONFIGS)
    def test_plan_hit_matches_live_plane(self, version, size, flow,
                                         m, n, k, monkeypatch):
        kernel, hw_factory = _matmul_setup(version, size, flow, m, n, k)
        before_hits = METRICS_PLAN_COUNTERS["metrics_plan_hits"]
        cached_states = _measure_matmul(kernel, hw_factory, m, n, k)
        # The second fresh-board invocation fingerprints identically.
        assert METRICS_PLAN_COUNTERS["metrics_plan_hits"] > before_hits
        # Live (uncached) metrics plane, same kernel, fresh boards.
        monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
        kernel2, hw_factory2 = _matmul_setup(version, size, flow, m, n, k)
        live_states = _measure_matmul(kernel2, hw_factory2, m, n, k)
        assert cached_states[0] == cached_states[1]
        assert cached_states == live_states

    def test_double_buffered_runtime(self, monkeypatch):
        kernel, hw_factory = _matmul_setup(3, 8, "As", 32, 32, 32)
        cached = _measure_matmul(kernel, hw_factory, 32, 32, 32,
                                 runtime_cls=DoubleBufferedRuntime)
        monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
        kernel2, hw_factory2 = _matmul_setup(3, 8, "As", 32, 32, 32)
        live = _measure_matmul(kernel2, hw_factory2, 32, 32, 32,
                               runtime_cls=DoubleBufferedRuntime)
        assert cached == live

    def test_conv_plan_hit_matches_live_plane(self, monkeypatch):
        def run(kill_switch):
            if kill_switch:
                monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
            else:
                monkeypatch.delenv("REPRO_NO_METRICS_PLAN", raising=False)
            hw, info = make_conv_system(4, 3)
            kernel = AXI4MLIRCompiler(
                info, kernel_cache=KernelCache()
            ).compile_conv(1, 4, 8, 2, 3, 1)
            rng = np.random.default_rng(17)
            image = rng.integers(-4, 4, (1, 4, 8, 8)).astype(np.int32)
            weights = rng.integers(-4, 4, (2, 4, 3, 3)).astype(np.int32)
            states = []
            for _ in range(2):
                hw = make_conv_system(4, 3)[0]
                board = make_pynq_z2()
                board.attach_accelerator(hw)
                out = np.zeros((1, 2, 6, 6), np.int32)
                counters = kernel.run(board, image, weights, out)
                states.append((counters.as_dict(), out.tobytes(),
                               _board_state(board, hw)))
            return states

        cached = run(kill_switch=False)
        live = run(kill_switch=True)
        assert cached[0] == cached[1]
        assert cached == live

    def test_warm_board_rebuilds_plan(self):
        """Repeated runs on ONE board change the fingerprint (warm
        caches, advanced clock, new simulated addresses) — every
        invocation must miss the plan cache and still be bit-identical
        to the per-tile path (covered by test_trace_replay's
        repeated-runs scenario; here we assert the cache discipline)."""
        kernel, hw_factory = _matmul_setup(3, 4, "Ns", 16, 16, 16)
        hw = hw_factory()
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(5)
        a = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        b = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        before = dict(METRICS_PLAN_COUNTERS)
        for _ in range(3):
            kernel.run(board, a, b, np.zeros((16, 16), np.int32))
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] \
            == before["metrics_plan_misses"] + 3
        assert METRICS_PLAN_COUNTERS["metrics_plan_hits"] \
            == before["metrics_plan_hits"]


@settings(max_examples=8, deadline=None)
@given(
    tiles_m=st.integers(1, 3), tiles_n=st.integers(1, 3),
    tiles_k=st.integers(1, 3),
    version_flow=st.sampled_from([(1, "Ns"), (2, "As"), (2, "Bs"),
                                  (3, "Cs"), (3, "Ns")]),
    seed=st.integers(0, 2 ** 16),
)
def test_property_plan_hit_bit_identical(tiles_m, tiles_n, tiles_k,
                                         version_flow, seed):
    """Seed-pinned property: plan hits match fresh builds everywhere."""
    version, flow = version_flow
    size = 4
    m, n, k = size * tiles_m, size * tiles_n, size * tiles_k
    kernel, hw_factory = _matmul_setup(version, size, flow, m, n, k)
    states = _measure_matmul(kernel, hw_factory, m, n, k, runs=2,
                             seed=seed)
    assert states[0] == states[1]


class TestSwitches:
    def test_kill_switch_counts_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
        kernel, hw_factory = _matmul_setup(3, 4, "Ns", 16, 16, 16)
        before = dict(METRICS_PLAN_COUNTERS)
        _measure_matmul(kernel, hw_factory, 16, 16, 16)
        assert METRICS_PLAN_COUNTERS["metrics_plan_fallback"] \
            == before["metrics_plan_fallback"] + 2
        assert METRICS_PLAN_COUNTERS["metrics_plan_hits"] \
            == before["metrics_plan_hits"]
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] \
            == before["metrics_plan_misses"]

    def test_check_mode_passes_on_sound_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_CHECK", "1")
        kernel, hw_factory = _matmul_setup(3, 8, "Cs", 32, 32, 32)
        states = _measure_matmul(kernel, hw_factory, 32, 32, 32)
        assert states[0] == states[1]

    def test_check_mode_raises_on_divergence(self, monkeypatch):
        """A corrupted cached plan must fail loudly under
        REPRO_METRICS_CHECK=1 instead of silently applying."""
        kernel, hw_factory = _matmul_setup(3, 4, "Ns", 16, 16, 16)
        _measure_matmul(kernel, hw_factory, 16, 16, 16, runs=1)
        trace = kernel.trace_state.trace
        assert trace is not None and trace.metrics_plans
        plan = next(iter(trace.metrics_plans.values()))
        plan.final_state = plan.final_state.copy()
        plan.final_state[0] += 1.0  # corrupt the cpu-cycle end state
        monkeypatch.setenv("REPRO_METRICS_CHECK", "1")
        with pytest.raises(MetricsPlanMismatch, match="final_state"):
            _measure_matmul(kernel, hw_factory, 16, 16, 16, runs=1)

    def test_benchmark_configs_take_plan_path(self):
        """No silent fallback: a representative benchmark sweep ends
        with misses+hits and zero fallbacks."""
        before = dict(METRICS_PLAN_COUNTERS)
        for version, size, flow, m, n, k in MATMUL_CONFIGS[:3]:
            kernel, hw_factory = _matmul_setup(version, size, flow,
                                               m, n, k)
            _measure_matmul(kernel, hw_factory, m, n, k)
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] \
            > before["metrics_plan_misses"]
        assert METRICS_PLAN_COUNTERS["metrics_plan_hits"] \
            > before["metrics_plan_hits"]
        assert METRICS_PLAN_COUNTERS["metrics_plan_fallback"] \
            == before["metrics_plan_fallback"]


class TestResultsTables:
    def test_benchmark_result_tables_unchanged(self):
        """The committed benchmarks/results/*.txt must reflect exactly
        what the plan-path produces (byte-identity is asserted for the
        tables the unit suite can regenerate quickly)."""
        from pathlib import Path

        from repro.experiments import fig10_rows, format_table

        results = Path(__file__).resolve().parent.parent \
            / "benchmarks" / "results" / "fig10_relevance.txt"
        if not results.exists():
            pytest.skip("benchmark results not generated yet")
        rendered = format_table(
            fig10_rows(),
            ("dims", "accel_size", "accel_version", "task_clock_ms"),
        ) + "\n"
        assert rendered == results.read_text()


# -- incremental cross-kernel builds ----------------------------------------
#
# The contract: a recording ModelSession resuming each step's LRU
# characterization from the previous step's warm end-state (the
# PlanBuildCarrier path) is bit-identical to scratch builds that
# re-export the hierarchy per step (the REPRO_NO_INCREMENTAL_PLAN=1
# path) — per-step PerfCounters, outputs, board clock, and LRU
# end-state digests all match, as do the fused plans' timelines.

def _run_matmul_session(specs, *, incremental, name=None):
    """One fresh recording session over matmul ``specs``."""
    from test_model_plan import run_matmul_sequence

    name = name or f"incr-{uuid.uuid4().hex}"
    if incremental:
        return run_matmul_sequence(name, specs)
    os.environ["REPRO_NO_INCREMENTAL_PLAN"] = "1"
    try:
        return run_matmul_sequence(name, specs)
    finally:
        del os.environ["REPRO_NO_INCREMENTAL_PLAN"]


class TestIncrementalBuilds:
    def test_kill_switch_skips_resumption_bit_identically(self):
        from test_model_plan import MATMUL_SPECS

        reset_model_plans()
        before = dict(METRICS_PLAN_COUNTERS)
        warm_states, warm_plan = _run_matmul_session(
            MATMUL_SPECS, incremental=True)
        # Step 1 seeds the carrier; every later step resumes it.
        assert METRICS_PLAN_COUNTERS["plan_incremental_hits"] \
            == before["plan_incremental_hits"] + len(MATMUL_SPECS) - 1

        reset_model_plans()
        before = dict(METRICS_PLAN_COUNTERS)
        cold_states, cold_plan = _run_matmul_session(
            MATMUL_SPECS, incremental=False)
        assert METRICS_PLAN_COUNTERS["plan_incremental_hits"] \
            == before["plan_incremental_hits"]
        assert warm_states == cold_states
        assert np.array_equal(warm_plan.timeline(), cold_plan.timeline())

    def test_conv_session_incremental_bit_identical(self):
        from test_model_plan import run_conv_sequence

        reset_model_plans()
        warm = run_conv_sequence(f"incr-conv-{uuid.uuid4().hex}")
        reset_model_plans()
        os.environ["REPRO_NO_INCREMENTAL_PLAN"] = "1"
        try:
            cold = run_conv_sequence(f"incr-conv-{uuid.uuid4().hex}")
        finally:
            del os.environ["REPRO_NO_INCREMENTAL_PLAN"]
        assert warm[0] == cold[0]
        assert np.array_equal(warm[1].timeline(), cold[1].timeline())

    def test_mid_sequence_divergence_bit_identical(self):
        """A replaying session that falls off the fused plan mid-way
        records the divergent tail with a carrier whose state no longer
        matches the board (replayed steps applied plans without
        touching it) — the carrier must detect that and reseed, giving
        the same bits as the scratch path."""
        from test_model_plan import MATMUL_SPECS, run_matmul_sequence

        divergent = (MATMUL_SPECS[0], (16, 32, 16, 8, 3, "Cs", None))
        results = {}
        for mode in ("warm", "cold"):
            reset_model_plans()
            name = f"diverge-{mode}-{uuid.uuid4().hex}"
            if mode == "cold":
                os.environ["REPRO_NO_INCREMENTAL_PLAN"] = "1"
            try:
                run_matmul_sequence(name)  # record the straight run
                results[mode] = run_matmul_sequence(name, divergent)
            finally:
                os.environ.pop("REPRO_NO_INCREMENTAL_PLAN", None)
        warm_states, warm_plan = results["warm"]
        cold_states, cold_plan = results["cold"]
        assert warm_states == cold_states
        assert np.array_equal(warm_plan.timeline(), cold_plan.timeline())


@settings(max_examples=8, deadline=None)
@given(
    tiles=st.tuples(st.integers(1, 3), st.integers(1, 3),
                    st.integers(1, 3)),
    version_flow=st.sampled_from([(1, "Ns"), (2, "As"), (2, "Bs"),
                                  (3, "Cs"), (3, "Ns")]),
    repeat=st.booleans(),
)
def test_property_incremental_matches_scratch(tiles, version_flow, repeat):
    """Incremental-vs-scratch bit-identity across flows and tilings.

    ``repeat`` alternates between a repeated-layer sequence (same
    kernel twice, the memo-friendly case) and a grown second step."""
    version, flow = version_flow
    size = 4
    m, n, k = size * tiles[0], size * tiles[1], size * tiles[2]
    second = (m, n, k) if repeat else (m, 2 * n, k)
    specs = ((m, n, k, size, version, flow, None),
             second + (size, version, flow, None))
    reset_model_plans()
    warm_states, warm_plan = _run_matmul_session(specs, incremental=True)
    reset_model_plans()
    cold_states, cold_plan = _run_matmul_session(specs, incremental=False)
    assert warm_states == cold_states
    assert np.array_equal(warm_plan.timeline(), cold_plan.timeline())


class TestComponentMemo:
    #: Memoized sub-products of one live build: cost tables, stream
    #: tables, winner maps, timeline sync/aux tables, and (on the
    #: native path) the classification result keyed by LRU start state.
    COMPONENTS_PER_BUILD = 5 if native_lib() is not None else 4

    def test_identical_layout_builds_hit_memo(self, monkeypatch):
        """Two live builds of the same kernel on identically laid-out
        fresh boards: the first misses every component (cost tables,
        stream tables, winner maps, cold-state classification), the
        second hits them all."""
        per_build = self.COMPONENTS_PER_BUILD
        monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
        reset_component_memo()
        kernel, hw_factory = _matmul_setup(3, 4, "Ns", 16, 16, 16)
        before = dict(METRICS_PLAN_COUNTERS)
        _measure_matmul(kernel, hw_factory, 16, 16, 16, runs=1)
        assert METRICS_PLAN_COUNTERS["component_memo_hits"] \
            == before["component_memo_hits"]
        assert METRICS_PLAN_COUNTERS["component_memo_misses"] \
            == before["component_memo_misses"] + per_build
        _measure_matmul(kernel, hw_factory, 16, 16, 16, runs=1)
        assert METRICS_PLAN_COUNTERS["component_memo_hits"] \
            == before["component_memo_hits"] + per_build
        assert METRICS_PLAN_COUNTERS["component_memo_misses"] \
            == before["component_memo_misses"] + per_build

    def test_distinct_shapes_do_not_alias(self, monkeypatch):
        per_build = self.COMPONENTS_PER_BUILD
        monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
        reset_component_memo()
        before = dict(METRICS_PLAN_COUNTERS)
        for m in (16, 32):
            kernel, hw_factory = _matmul_setup(3, 4, "Ns", m, 16, 16)
            _measure_matmul(kernel, hw_factory, m, 16, 16, runs=1)
        assert METRICS_PLAN_COUNTERS["component_memo_hits"] \
            == before["component_memo_hits"]
        assert METRICS_PLAN_COUNTERS["component_memo_misses"] \
            == before["component_memo_misses"] + 2 * per_build
