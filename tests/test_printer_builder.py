"""Tests for the IR printer, the builder, and remaining dialect corners."""

import pytest

from repro.dialects import accel, arith, func, memref, scf
from repro.ir import (
    Builder,
    I32,
    INDEX,
    InsertionPoint,
    IRError,
    MemRefType,
    Module,
    make_func,
    print_op,
    verify,
)
from repro.ir.types import F32
from repro.ir.verifier import VerificationError
from repro.opcodes import SendIdx, parse_opcode_flow, parse_opcode_map


class TestPrinter:
    def build_module(self):
        module = Module()
        f = module.add_function(
            make_func("kern", [MemRefType((8, 8), F32)])
        )
        b = func.builder_at_entry(f)
        (argument,) = func.arguments(f)
        zero = arith.index_constant(b, 0)
        eight = arith.index_constant(b, 8)
        four = arith.index_constant(b, 4)
        with scf.build_for(b, zero, eight, four, "m") as iv:
            sub = memref.subview(b, argument, [iv, zero], [4, 4])
            value = memref.load(b, sub, [zero, zero])
            memref.store(b, value, sub, [zero, zero])
        func.ret(b)
        return module

    def test_module_prints_function_signature(self):
        text = str(self.build_module())
        assert "func.func @kern(%arg0: memref<8x8xf32>)" in text

    def test_loops_render_as_scf_for(self):
        text = str(self.build_module())
        assert "scf.for" in text
        assert "step" in text

    def test_strided_subview_type_printed(self):
        text = str(self.build_module())
        assert "strided<[8, 1], offset: ?>" in text

    def test_print_op_single(self):
        module = self.build_module()
        f = module.functions()[0]
        text = print_op(f)
        assert text.startswith("func.func @kern")

    def test_attributes_printed(self):
        module = Module()
        f = module.add_function(make_func("g", []))
        b = func.builder_at_entry(f)
        b.create("test.op", attributes={"mode": "accumulate", "n": 3})
        func.ret(b)
        text = str(module)
        assert 'mode = "accumulate"' in text
        assert "n = 3" in text


class TestBuilder:
    def test_insertion_point_before_and_after(self):
        f = make_func("h", [])
        block = f.regions[0].entry_block
        b = Builder(InsertionPoint.at_end(block))
        first = b.create("test.a")
        b.set_insertion_point(InsertionPoint.before(first))
        b.create("test.b")
        b.set_insertion_point(InsertionPoint.after(first))
        b.create("test.c")
        assert [op.name for op in block] == ["test.b", "test.a", "test.c"]

    def test_push_pop_insertion_point(self):
        f = make_func("h", [])
        block = f.regions[0].entry_block
        b = Builder(InsertionPoint.at_end(block))
        zero = arith.index_constant(b, 0)
        one = arith.index_constant(b, 1)
        loop = scf.for_op(b, zero, one, one)
        b.push_insertion_point(InsertionPoint.at_end(scf.body_block(loop)))
        b.create("test.inner")
        b.pop_insertion_point()
        b.create("test.outer")
        assert block.operations[-1].name == "test.outer"
        assert scf.body_block(loop).operations[0].name == "test.inner"

    def test_pop_empty_stack_rejected(self):
        with pytest.raises(IRError):
            Builder().pop_insertion_point()

    def test_constant_cache_per_block(self):
        f = make_func("h", [])
        block = f.regions[0].entry_block
        b = Builder(InsertionPoint.at_end(block))
        first = arith.index_constant(b, 5)
        second = arith.index_constant(b, 5)
        assert first is second
        other_type = arith.constant(b, 5, I32)
        assert other_type is not first

    def test_builder_without_ip_rejected(self):
        with pytest.raises(IRError):
            Builder().create("test.op")


class TestDialectVerifiers:
    def test_arith_type_mismatch(self):
        f = make_func("h", [])
        b = Builder(InsertionPoint.at_end(f.regions[0].entry_block))
        index_value = arith.index_constant(b, 1)
        int_value = arith.constant(b, 1, I32)
        with pytest.raises(VerificationError):
            arith.addi(b, index_value, int_value)

    def test_float_op_rejects_ints(self):
        f = make_func("h", [])
        b = Builder(InsertionPoint.at_end(f.regions[0].entry_block))
        value = arith.constant(b, 1, I32)
        op = b.create("arith.addf", operands=[value, value],
                      result_types=[I32])
        with pytest.raises(VerificationError):
            verify(op)

    def test_subview_rank_mismatch(self):
        f = make_func("h", [MemRefType((4, 4), I32)])
        b = Builder(InsertionPoint.at_end(f.regions[0].entry_block))
        (argument,) = f.regions[0].entry_block.arguments
        zero = arith.index_constant(b, 0)
        with pytest.raises(VerificationError):
            memref.subview(b, argument, [zero], [4])

    def test_recv_mode_validated(self):
        f = make_func("h", [MemRefType((4, 4), I32)])
        b = Builder(InsertionPoint.at_end(f.regions[0].entry_block))
        (argument,) = f.regions[0].entry_block.arguments
        zero = arith.constant(b, 0, I32)
        with pytest.raises(VerificationError):
            accel.recv(b, argument, zero, mode="teleport")

    def test_scf_bounds_must_be_index(self):
        f = make_func("h", [])
        b = Builder(InsertionPoint.at_end(f.regions[0].entry_block))
        bad = arith.constant(b, 0, I32)
        loop = b.create("scf.for", operands=[bad, bad, bad], regions=1)
        loop.regions[0].add_block([INDEX])
        with pytest.raises(VerificationError):
            verify(loop)


class TestSendIdxLowering:
    """send_idx actions lower to accel.send_idx on the loop iv."""

    def test_flow_with_send_idx(self):
        from repro.accel_config import parse_accelerator
        from repro.accelerators import matmul_config_dict
        from repro.compiler import AXI4MLIRCompiler, build_matmul_module
        from repro.transforms import build_axi4mlir_pipeline

        config = matmul_config_dict(3, 4, "Ns")
        config["opcode_map"] = (
            "opcode_map < sAll = [send_literal(0x21), send_idx(m), "
            "send_idx(n), send_idx(k), send(0), send(1), recv(2)], "
            "reset = [send_literal(0xFF)] >"
        )
        config["opcode_flow_map"] = {"Ns": "(sAll)"}
        config["selected_flow"] = "Ns"
        info = parse_accelerator(config)
        module = build_matmul_module(8, 8, 8, info.data_type)
        pm = build_axi4mlir_pipeline(info, enable_cpu_tiling=False)
        pm.run(module)
        ops = [op.name for op in module.walk()]
        assert ops.count("accel.send_idx") == 3
        # The idx operands are the loop induction variables.
        send_idx_ops = [op for op in module.walk()
                        if op.name == "accel.send_idx"]
        from repro.ir.core import BlockArgument
        assert all(isinstance(op.operands[0], BlockArgument)
                   for op in send_idx_ops)
