"""Tests for the cache simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.cache import Cache, CacheHierarchy, lines_of_range
from repro.soc.perf import PerfCounters
from repro.soc.timing import TimingModel


class TestCacheBasics:
    def test_geometry(self):
        cache = Cache(32 * 1024, line_size=32, associativity=4)
        assert cache.num_sets == 256

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(1000, line_size=32, associativity=4)

    def test_cold_miss_then_hit(self):
        cache = Cache(1024, 32, 2)
        assert not cache.access_line(5)
        assert cache.access_line(5)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        # 2-way set: third distinct tag in a set evicts the LRU one.
        cache = Cache(128, 32, 2)  # 2 sets
        lines = [0, 2, 4]  # all map to set 0
        for line in lines:
            cache.access_line(line)
        assert not cache.contains_line(0)
        assert cache.contains_line(2)
        assert cache.contains_line(4)

    def test_lru_refresh_on_hit(self):
        cache = Cache(128, 32, 2)
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)   # refresh 0
        cache.access_line(4)   # evicts 2, not 0
        assert cache.contains_line(0)
        assert not cache.contains_line(2)

    def test_batch_counts_match_single(self):
        a = Cache(512, 32, 2)
        b = Cache(512, 32, 2)
        lines = [1, 2, 3, 1, 2, 9, 1, 17, 1]
        for line in lines:
            a.access_line(line)
        hits, misses = b.access_lines(lines)
        assert (hits, misses) == (a.hits, a.misses)

    def test_reset(self):
        cache = Cache(512, 32, 2)
        cache.access_line(1)
        cache.reset()
        assert cache.occupancy() == 0
        assert (cache.hits, cache.misses) == (0, 0)


class TestLinesOfRange:
    def test_single_line(self):
        assert list(lines_of_range(0, 4, 32)) == [0]

    def test_straddles_boundary(self):
        assert list(lines_of_range(30, 4, 32)) == [0, 1]

    def test_exact_line(self):
        assert list(lines_of_range(32, 32, 32)) == [1]

    def test_empty(self):
        assert list(lines_of_range(10, 0, 32)) == []


class TestHierarchy:
    def test_l2_catches_l1_evictions(self):
        timing = TimingModel()
        hierarchy = CacheHierarchy(
            timing,
            l1=Cache(128, 32, 2, "L1"),
            l2=Cache(1024, 32, 4, "L2"),
        )
        counters = PerfCounters()
        hierarchy.touch_lines([0, 2, 4], counters)   # 0 evicted from L1
        assert counters.cache_misses == 3
        assert counters.l2_misses == 3
        hierarchy.touch_lines([0], counters)         # L1 miss, L2 hit
        assert counters.cache_misses == 4
        assert counters.l2_misses == 3

    def test_miss_penalties_charged(self):
        timing = TimingModel()
        hierarchy = CacheHierarchy(timing)
        counters = PerfCounters()
        penalty = hierarchy.touch_lines([1000], counters)
        assert penalty == (timing.l1_miss_penalty_cycles
                           + timing.l2_miss_penalty_cycles)
        assert hierarchy.touch_lines([1000], counters) == \
            timing.l1_hit_extra_cycles

    def test_line_size_mismatch_rejected(self):
        timing = TimingModel()
        with pytest.raises(ValueError):
            CacheHierarchy(timing, l1=Cache(128, 32, 2),
                           l2=Cache(1024, 64, 4))


@settings(max_examples=50)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_hits_plus_misses_equals_accesses(lines):
    cache = Cache(1024, 32, 2)
    cache.access_lines(lines)
    assert cache.hits + cache.misses == len(lines)


@settings(max_examples=50)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=300))
def test_occupancy_bounded_by_capacity(lines):
    cache = Cache(512, 32, 2)  # 16 lines capacity
    cache.access_lines(lines)
    assert cache.occupancy() <= 16
    assert cache.occupancy() <= len(set(lines))


@settings(max_examples=50)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_small_working_set_never_evicted(lines):
    # 31 distinct lines spread over 256 sets with 4 ways: no conflicts.
    cache = Cache(32 * 1024, 32, 4)
    cache.access_lines(lines)
    assert cache.misses == len({line for line in lines})


@settings(max_examples=30)
@given(
    lines=st.lists(st.integers(0, 100), min_size=1, max_size=200),
    split=st.integers(1, 199),
)
def test_batch_split_invariance(lines, split):
    whole = Cache(512, 32, 2)
    parts = Cache(512, 32, 2)
    whole.access_lines(lines)
    parts.access_lines(lines[:split])
    parts.access_lines(lines[split:])
    assert (whole.hits, whole.misses) == (parts.hits, parts.misses)
