"""Tests for the compiler passes: generalize, annotate, flow analysis,
CPU tiling, and the lowering structure."""

import pytest

from repro.accelerators import make_conv_system, make_matmul_system
from repro.compiler import build_conv_module, build_matmul_module
from repro.dialects import linalg, scf
from repro.ir import I32, Module, verify
from repro.ir.attributes import unwrap
from repro.opcodes import parse_opcode_flow, parse_opcode_map
from repro.transforms import (
    AnnotateForAcceleratorPass,
    CompileError,
    GeneralizeNamedOpsPass,
    LowerToAccelPass,
    build_axi4mlir_pipeline,
    choose_cpu_tiles,
    derive_loop_order,
    place_flow,
)
from repro.transforms.annotate import PREFIX, is_annotated
from repro.transforms.pass_manager import PassManager

MATMUL_MAP = parse_opcode_map(
    "opcode_map < sA = [send_literal(0x22), send(0)], "
    "sB = [send_literal(0x23), send(1)], "
    "cC = [send_literal(0xF0)], "
    "rC = [send_literal(0x24), recv(2)], "
    "sBcCrC = [send_literal(0x25), send(1), recv(2)] >"
)
MATMUL_OPERAND_DIMS = [{"m", "k"}, {"k", "n"}, {"m", "n"}]
MATMUL_DIMS = ["m", "n", "k"]
TILES = {"m": 4, "n": 4, "k": 4}


class TestGeneralize:
    def test_matmul_generalizes_to_paper_trait(self):
        module = build_matmul_module(8, 8, 8, I32)
        GeneralizeNamedOpsPass().run(module)
        verify(module.op)
        ops = [op for op in module.walk() if op.name == "linalg.generic"]
        assert len(ops) == 1
        assert linalg.matches_matmul(ops[0])
        assert linalg.loop_ranges(ops[0]) == (8, 8, 8)

    def test_conv_generalizes(self):
        module = build_conv_module(1, 4, 8, 2, 3, 2, I32)
        GeneralizeNamedOpsPass().run(module)
        ops = [op for op in module.walk() if op.name == "linalg.generic"]
        assert linalg.kernel_name(ops[0]) == "linalg.conv_2d_nchw_fchw"
        # (n, f, oh, ow, c, fh, fw) with stride-2 output 3x3.
        assert linalg.loop_ranges(ops[0]) == (1, 2, 3, 3, 4, 3, 3)


class TestAnnotate:
    def annotated_module(self, flow="As"):
        _, info = make_matmul_system(3, 4, flow=flow)
        module = build_matmul_module(8, 8, 8, I32)
        pm = PassManager()
        pm.add(GeneralizeNamedOpsPass())
        pm.add(AnnotateForAcceleratorPass(info))
        pm.run(module)
        return module

    def test_trait_attributes_attached(self):
        module = self.annotated_module()
        op = [o for o in module.walk() if o.name == "linalg.generic"][0]
        assert is_annotated(op)
        assert unwrap(op.get_attr(PREFIX + "accel_dim")) == \
            {"m": 4, "n": 4, "k": 4}
        assert op.get_attr(PREFIX + "opcode_map").value.names() == \
            ["sA", "sB", "cC", "rC", "reset"]
        assert str(op.get_attr(PREFIX + "opcode_flow").value) == \
            "opcode_flow < (sA (sB cC rC)) >"
        dma = unwrap(op.get_attr(PREFIX + "dma_init_config"))
        assert dma["inputBufferSize"] == 0x2_0000

    def test_no_match_is_an_error(self):
        _, info = make_matmul_system(3, 4)
        module = Module()
        with pytest.raises(CompileError):
            AnnotateForAcceleratorPass(info).run(module)

    def test_kernel_mismatch_detected(self):
        _, conv_info = make_conv_system(4, 3)
        module = build_matmul_module(8, 8, 8, I32)
        GeneralizeNamedOpsPass().run(module)
        with pytest.raises(CompileError):
            AnnotateForAcceleratorPass(conv_info).run(module)


class TestLoopOrderDerivation:
    def order(self, flow_text):
        flow = parse_opcode_flow(flow_text)
        return derive_loop_order(flow, MATMUL_MAP, MATMUL_OPERAND_DIMS,
                                 MATMUL_DIMS, TILES)

    def test_a_stationary_paper_fig6a(self):
        # permutation_map = (m, n, k) -> (m, k, n) in the paper.
        assert self.order("(sA (sBcCrC))") == ["m", "k", "n"]

    def test_c_stationary(self):
        assert self.order("((sA sB cC) rC)") == ["m", "n", "k"]

    def test_b_stationary(self):
        assert self.order("(sB (sA cC rC))") == ["n", "k", "m"]

    def test_nothing_stationary_keeps_kernel_order(self):
        assert self.order("(sA sB cC rC)") == ["m", "n", "k"]


class TestPlacement:
    def place(self, flow_text, order):
        flow = parse_opcode_flow(flow_text)
        return place_flow(flow, MATMUL_MAP, MATMUL_OPERAND_DIMS, order,
                          TILES)

    def test_ns_all_innermost(self):
        placement = self.place("(sA sB cC rC)", ["m", "n", "k"])
        assert placement.levels_by_opcode == \
            {"sA": 2, "sB": 2, "cC": 2, "rC": 2}

    def test_as_hoists_sA(self):
        placement = self.place("(sA (sBcCrC))", ["m", "k", "n"])
        assert placement.levels_by_opcode["sA"] == 1
        assert placement.levels_by_opcode["sBcCrC"] == 2

    def test_cs_hoists_rC(self):
        placement = self.place("((sA sB cC) rC)", ["m", "n", "k"])
        assert placement.levels_by_opcode["rC"] == 1
        assert placement.levels_by_opcode["sA"] == 2

    def test_degenerate_extra_nesting_deepens(self):
        placement = self.place("(sA ((sBcCrC)))", ["m", "k", "n"])
        assert placement.levels_by_opcode["sBcCrC"] == 2

    def test_over_nested_flow_collapses_to_innermost(self):
        # More parenthesis levels than loops: the extra scopes collapse
        # onto the innermost loop and only delimit transfer batches.
        placement = self.place("(sA (sB (cC (rC))))", ["m", "k", "n"])
        assert placement.levels_by_opcode["cC"] == 2
        assert placement.levels_by_opcode["rC"] == 2
        assert placement.max_level() <= 2

    def test_unknown_opcode_rejected(self):
        with pytest.raises(CompileError):
            self.place("(sZ)", ["m", "n", "k"])


class TestCpuTiling:
    OPERANDS = [["m", "k"], ["k", "n"], ["m", "n"]]

    def test_small_problem_not_tiled(self):
        tiles = choose_cpu_tiles(
            {"m": 64, "n": 64, "k": 64}, {"m": 8, "n": 8, "k": 8},
            self.OPERANDS, 4, 512 * 1024,
        )
        assert tiles == {"m": 64, "n": 64, "k": 64}

    def test_large_problem_tiled_to_budget(self):
        tiles = choose_cpu_tiles(
            {"m": 1024, "n": 1024, "k": 1024}, {"m": 16, "n": 16, "k": 16},
            self.OPERANDS, 4, 512 * 1024,
        )
        footprint = (tiles["m"] * tiles["k"] + tiles["k"] * tiles["n"]
                     + tiles["m"] * tiles["n"]) * 4
        assert footprint <= 512 * 1024 // 2
        assert any(tiles[d] < 1024 for d in "mnk")

    def test_tiles_are_divisors_and_multiples(self):
        tiles = choose_cpu_tiles(
            {"m": 768, "n": 768, "k": 768}, {"m": 16, "n": 16, "k": 16},
            self.OPERANDS, 4, 256 * 1024,
        )
        for dim in "mnk":
            assert 768 % tiles[dim] == 0
            assert tiles[dim] % 16 == 0


class TestLowering:
    def lowered(self, version=3, flow="As", dims=16, size=4,
                cpu_tiling=False):
        _, info = make_matmul_system(version, size, flow=flow)
        module = build_matmul_module(dims, dims, dims, I32)
        pm = build_axi4mlir_pipeline(info, enable_cpu_tiling=cpu_tiling)
        pm.run(module)
        return module

    def loop_nest_depth(self, module):
        func_op = module.functions()[0]
        tops = [op for op in func_op.regions[0].entry_block
                if op.name == "scf.for"]
        return max(scf.perfect_nest_depth(top) for top in tops), tops

    def test_as_flow_structure_matches_fig6b(self):
        module = self.lowered(flow="As")
        verify(module.op)
        text = str(module)
        # dma_init once, reset before the loops.
        assert text.count("accel.dma_init") == 1
        ops = [op.name for op in module.walk()]
        assert ops.count("accel.recv") == 1
        # sA's send sits in the second loop, sB/rC in the innermost.
        func_op = module.functions()[0]
        outer = [op for op in func_op.regions[0].entry_block
                 if op.name == "scf.for"][0]
        second = [op for op in scf.body_block(outer) if op.name == "scf.for"][0]
        second_body_ops = [op.name for op in scf.body_block(second)]
        assert "accel.send" in second_body_ops          # sA tile
        inner = [op for op in scf.body_block(second) if op.name == "scf.for"][0]
        inner_body_ops = [op.name for op in scf.body_block(inner)]
        assert "accel.recv" in inner_body_ops

    def test_ns_flow_all_communication_innermost(self):
        module = self.lowered(flow="Ns")
        func_op = module.functions()[0]
        loops = [op for op in func_op.walk() if op.name == "scf.for"]
        assert len(loops) == 3
        innermost = loops[-1]
        names = [op.name for op in scf.body_block(innermost)]
        assert names.count("accel.send") == 2
        assert names.count("accel.recv") == 1

    def test_cs_flow_recv_after_k_loop(self):
        module = self.lowered(flow="Cs")
        func_op = module.functions()[0]
        loops = [op for op in func_op.walk() if op.name == "scf.for"]
        n_loop_body = scf.body_block(loops[1])
        names = [op.name for op in n_loop_body]
        k_index = names.index("scf.for")
        recv_index = names.index("accel.recv")
        assert recv_index > k_index

    def test_flush_before_each_recv(self):
        module = self.lowered(flow="Ns")
        for func_op in module.functions():
            for block_ops in _blocks(func_op):
                for i, op in enumerate(block_ops):
                    if op.name == "accel.recv":
                        names_before = [o.name for o in block_ops[:i]]
                        assert "accel.flush_send" in names_before

    def test_divisibility_enforced(self):
        _, info = make_matmul_system(3, 4)
        module = build_matmul_module(10, 10, 10, I32)
        pm = build_axi4mlir_pipeline(info)
        with pytest.raises(CompileError):
            pm.run(module)

    def test_cpu_tiling_adds_outer_loops(self):
        _, info = make_matmul_system(3, 16, flow="Ns")
        module = build_matmul_module(256, 256, 256, I32)
        pm = build_axi4mlir_pipeline(info, enable_cpu_tiling=True)
        pm.run(module)
        func_op = module.functions()[0]
        loops = [op for op in func_op.walk() if op.name == "scf.for"]
        assert len(loops) > 3  # outer CPU tiles + inner accel loops

    def test_generic_op_replaced(self):
        module = self.lowered()
        assert not any(op.name == "linalg.generic" for op in module.walk())

    def test_plan_recorded(self):
        _, info = make_matmul_system(3, 4, flow="As")
        module = build_matmul_module(16, 16, 16, I32)
        pm = build_axi4mlir_pipeline(info, enable_cpu_tiling=False)
        pm.run(module)
        plan = pm.passes[-1].plans[0]
        assert plan.loop_order == ("m", "k", "n")
        assert plan.tiles == {"m": 4, "n": 4, "k": 4}

    def test_conv_lowering_structure_matches_fig15b(self):
        _, info = make_conv_system(8, 3)
        module = build_conv_module(1, 8, 6, 4, 3, 1, I32)
        pm = build_axi4mlir_pipeline(info, enable_cpu_tiling=False)
        pm.run(module)
        verify(module.op)
        plan = pm.passes[-1].plans[0]
        assert plan.loop_order == ("n", "f", "oh", "ow")
        func_op = module.functions()[0]
        loops = [op for op in func_op.walk() if op.name == "scf.for"]
        assert len(loops) == 4
        # rO: recv of the whole (1,1,4,4) output slice inside the f loop.
        f_body = scf.body_block(loops[1])
        recvs = [op for op in f_body if op.name == "accel.recv"]
        assert len(recvs) == 1
        slice_type = recvs[0].operands[0].type
        assert tuple(slice_type.shape) == (1, 1, 4, 4)

    def test_init_opcodes_emitted_before_loops(self):
        module = self.lowered(flow="Ns")
        func_op = module.functions()[0]
        names = [op.name for op in func_op.regions[0].entry_block]
        first_loop = names.index("scf.for")
        assert "accel.send_literal" in names[:first_loop]   # reset opcode
        assert "accel.flush_send" in names[:first_loop]


def _blocks(func_op):
    result = []

    def visit(block):
        result.append(list(block.operations))
        for op in block.operations:
            for region in op.regions:
                for nested in region.blocks:
                    visit(nested)

    visit(func_op.regions[0].entry_block)
    return result
