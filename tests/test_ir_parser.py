"""Tests for the textual IR parser: the print-idempotence contract
swept across every module the pipeline can produce, precise parse
errors, and compiling straight from ``.mlir`` text."""

import numpy as np
import pytest

from repro.accel_config import CPUInfo
from repro.accelerators import make_conv_system, make_matmul_system
from repro.compiler import AXI4MLIRCompiler, build_conv_module, build_matmul_module
from repro.ir import ParseError, parse_module, parse_op, print_module
from repro.ir.parser import registered_ops, tokenize
from repro.ir.verifier import VerificationError, verify
from repro.soc import make_pynq_z2
from repro.transforms import parse_pass_pipeline
from repro.transforms.errors import CompileError


def assert_fixpoint(module):
    """The acceptance contract: ``print(parse(print(m))) == print(m)``."""
    first = print_module(module)
    reparsed = parse_module(first)
    verify(reparsed.op)
    second = print_module(reparsed)
    assert second == first
    return reparsed


MATMUL_CONFIGS = [
    (1, 4, "Ns", None, (8, 8, 8)),
    (2, 4, "Bs", None, (8, 8, 8)),
    (3, 4, "As", None, (16, 12, 8)),
    (3, 8, "Cs", None, (16, 16, 16)),
    (4, 16, "Cs", (32, 16, 64), (64, 32, 64)),
]


class TestRoundTripSweep:
    """print∘parse∘print == print at every stage, for every config."""

    @pytest.mark.parametrize("version,size,flow,accel_size,shape",
                             MATMUL_CONFIGS)
    def test_matmul_all_stages(self, version, size, flow, accel_size, shape):
        _, info = make_matmul_system(version=version, size=size, flow=flow,
                                     accel_size=accel_size)
        m, n, k = shape
        module = build_matmul_module(m, n, k, info.data_type)
        assert_fixpoint(module)

        parse_pass_pipeline("generalize", info=info).run(module)
        assert_fixpoint(module)

        parse_pass_pipeline("annotate", info=info).run(module)
        assert_fixpoint(module)

        parse_pass_pipeline("lower-to-accel{cpu-tiling=off}",
                            info=info).run(module)
        assert_fixpoint(module)

    def test_matmul_with_cpu_tiling(self):
        _, info = make_matmul_system(version=3, size=4, flow="Cs")
        module = build_matmul_module(256, 256, 256, info.data_type)
        parse_pass_pipeline("generalize,annotate,lower-to-accel",
                            info=info, cpu=CPUInfo()).run(module)
        assert_fixpoint(module)

    def test_conv_all_stages(self):
        _, info = make_conv_system(4, 3)
        module = build_conv_module(1, 4, 8, 2, 3, 1, info.data_type)
        assert_fixpoint(module)
        parse_pass_pipeline("generalize,annotate,lower-to-accel{cpu-tiling=off}",
                            info=info).run(module)
        assert_fixpoint(module)

    def test_float_matmul(self):
        _, info = make_matmul_system(version=3, size=4, flow="Cs",
                                     dtype=np.float32)
        module = build_matmul_module(8, 8, 8, info.data_type)
        parse_pass_pipeline("generalize,annotate,lower-to-accel{cpu-tiling=off}",
                            info=info).run(module)
        assert_fixpoint(module)


class TestParserBasics:
    def test_parse_without_module_wrapper(self):
        module = parse_module(
            'func.func @f() {\n  "func.return"()\n}'
        )
        assert [func.get_attr("sym_name").value
                for func in module.functions()] == ["f"]

    def test_comments_and_directives_are_skipped(self):
        module = parse_module(
            "// RUN: generalize\nmodule {\n"
            "  // CHECK: nothing\n"
            '  func.func @f() {\n    "func.return"()\n  }\n}'
        )
        assert len(module.functions()) == 1

    def test_ssa_names_are_per_function(self):
        # Both functions use %arg0; scoping keeps them apart.
        module = parse_module(
            "module {\n"
            '  func.func @f(%arg0: i32) {\n    "func.return"()\n  }\n'
            '  func.func @g(%arg0: f32) {\n    "func.return"()\n  }\n'
            "}"
        )
        f, g = module.functions()
        assert str(f.regions[0].entry_block.arguments[0].type) == "i32"
        assert str(g.regions[0].entry_block.arguments[0].type) == "f32"

    def test_locations_attached(self):
        module = parse_module(
            'module {\n  func.func @f() {\n    "func.return"()\n  }\n}',
            filename="fixture.mlir",
        )
        func_op = module.functions()[0]
        assert func_op.location == "fixture.mlir:2"
        assert func_op.regions[0].entry_block.operations[0].location \
            == "fixture.mlir:3"

    def test_parse_op_single_function(self):
        op = parse_op('func.func @solo() {\n  "func.return"()\n}')
        assert op.name == "func.func"

    def test_undefined_value_is_an_error(self):
        with pytest.raises(ParseError, match="undefined value %x"):
            parse_module(
                'module {\n  func.func @f() {\n'
                '    "accel.flush_send"(%x) : (i32) -> (i32)\n'
                '    "func.return"()\n  }\n}'
            )

    def test_unregistered_op_is_an_error(self):
        text = ('module {\n  func.func @f() {\n'
                '    "nosuch.op"()\n    "func.return"()\n  }\n}')
        with pytest.raises(ParseError, match="unregistered operation"):
            parse_module(text)
        module = parse_module(text, allow_unregistered=True)
        assert module.functions()[0].regions[0].entry_block.operations[0] \
            .name == "nosuch.op"

    def test_operand_type_mismatch_is_an_error(self):
        with pytest.raises(ParseError, match="type clause says f32"):
            parse_module(
                'module {\n  func.func @f(%arg0: i32) {\n'
                '    %0 = "arith.addf"(%arg0, %arg0) : (f32, f32) -> (f32)\n'
                '    "func.return"()\n  }\n}'
            )

    def test_result_count_mismatch_is_an_error(self):
        with pytest.raises(ParseError, match="result names"):
            parse_module(
                'module {\n  func.func @f() {\n'
                '    %0, %1 = "arith.constant"() {value = 1} : () -> (index)\n'
                '    "func.return"()\n  }\n}'
            )

    def test_error_message_carries_file_line_col(self):
        with pytest.raises(ParseError, match=r"bad\.mlir:3:"):
            parse_module(
                'module {\n  func.func @f() {\n    "weird\n  }\n}',
                filename="bad.mlir",
            )

    def test_scoping_blocks_forward_references(self):
        # %5 is only defined inside the loop; using it after is an error.
        with pytest.raises(ParseError, match="undefined value"):
            parse_module(
                "module {\n"
                '  func.func @f() {\n'
                '    %0 = "arith.constant"() {value = 0} : () -> (index)\n'
                '    %1 = "arith.constant"() {value = 4} : () -> (index)\n'
                "    scf.for %2 = %0 to %1 step %1 {\n"
                '      %3 = "arith.constant"() {value = 1} : () -> (i32)\n'
                '      "scf.yield"()\n'
                "    }\n"
                '    "accel.flush_send"(%3) : (i32) -> (i32)\n'
                '    "func.return"()\n  }\n}'
            )

    def test_tokenizer_rejects_garbage(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("module { ; }")

    def test_verify_flag_runs_the_verifier(self):
        # Well-formed syntax, malformed op: scf.for bounds must be index.
        text = (
            "module {\n"
            '  func.func @f() {\n'
            '    %0 = "arith.constant"() {value = 0} : () -> (i32)\n'
            "    scf.for %1 = %0 to %0 step %0 {\n"
            '      "scf.yield"()\n'
            "    }\n"
            '    "func.return"()\n  }\n}'
        )
        parse_module(text)  # syntax alone is fine
        with pytest.raises(VerificationError, match="scf.for"):
            parse_module(text, verify=True)

    def test_registry_lists_core_ops(self):
        ops = registered_ops()
        for name in ("arith.constant", "memref.subview", "scf.for",
                     "func.func", "linalg.generic", "accel.recv"):
            assert name in ops
        assert registered_ops("accel") == sorted(
            op for op in ops if op.startswith("accel.")
        )


class TestPipelineSpecs:
    def test_unknown_pass_name(self):
        with pytest.raises(CompileError, match="unknown pass"):
            parse_pass_pipeline("no-such-pass")

    def test_annotate_requires_accelerator(self):
        with pytest.raises(CompileError, match="accelerator configuration"):
            parse_pass_pipeline("annotate")

    def test_malformed_option(self):
        _, info = make_matmul_system(version=3, size=4)
        with pytest.raises(CompileError, match="boolean"):
            parse_pass_pipeline("lower-to-accel{cpu-tiling=maybe}",
                                info=info)

    def test_empty_spec_is_an_empty_pipeline(self):
        pm = parse_pass_pipeline("")
        assert pm.passes == []


class TestCompileFromText:
    MATMUL_TEXT = """
    module {
      func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
        "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
        "func.return"()
      }
    }
    """

    def test_textual_module_compiles_and_runs(self, rng):
        hardware, info = make_matmul_system(version=3, size=4, flow="As")
        compiler = AXI4MLIRCompiler(info, enable_cpu_tiling=False,
                                    use_kernel_cache=False)
        kernel = compiler.compile_module(self.MATMUL_TEXT)
        assert kernel.func_name == "matmul_call"

        board = make_pynq_z2()
        board.attach_accelerator(hardware)
        a = rng.integers(-8, 8, (8, 8)).astype(np.int32)
        b = rng.integers(-8, 8, (8, 8)).astype(np.int32)
        c = np.zeros((8, 8), np.int32)
        kernel.run(board, a, b, c)
        assert np.array_equal(c, a @ b)

    def test_func_name_defaults_to_first_function(self):
        _, info = make_matmul_system(version=3, size=4, flow="As")
        compiler = AXI4MLIRCompiler(info, enable_cpu_tiling=False,
                                    use_kernel_cache=False)
        module = parse_module(self.MATMUL_TEXT)
        kernel = compiler.compile_module(module)
        assert kernel.func_name == "matmul_call"

    def test_empty_module_is_rejected(self):
        _, info = make_matmul_system(version=3, size=4)
        compiler = AXI4MLIRCompiler(info, use_kernel_cache=False)
        with pytest.raises(CompileError, match="no func.func"):
            compiler.compile_module("module {\n}")


class TestReviewRegressions:
    """Edge cases surfaced by review: multi-block regions, special
    floats, multi-line tokens, and pipeline option errors."""

    def test_labeled_block_after_unlabeled_entry_roundtrips(self):
        # The printer emits a bare entry block followed by "^bb1:" for a
        # two-block region whose entry has no arguments; the parser must
        # accept that exact shape.
        text = (
            "module {\n"
            '  func.func @f() {\n'
            '    "linalg.generic"(%arg0) {indexing_maps = '
            "[affine_map<(m) -> (m)>], iterator_types = [\"parallel\"], "
            "operandSegmentSizes = [0, 1]} : (memref<4xi32>)\n"
            "    ({\n"
            '      %0 = "arith.constant"() {value = 1} : () -> (i32)\n'
            '      "linalg.yield"(%0) : (i32)\n'
            "      ^bb1:\n"
            '      "linalg.yield"(%0) : (i32)\n'
            "    })\n"
            '    "func.return"()\n'
            "  }\n"
            "}"
        )
        text = text.replace("@f()", "@f(%arg0: memref<4xi32>)")
        parsed = parse_module(text)
        generic = parsed.functions()[0].regions[0].entry_block.operations[0]
        assert len(generic.regions[0].blocks) == 2
        printed = print_module(parsed)
        assert "^bb1:" in printed
        assert print_module(parse_module(printed)) == printed

    def test_negative_special_floats_with_type_suffix(self):
        text = (
            "module {\n  func.func @f() {\n"
            '    %0 = "arith.constant"() {value = 1, a = -inf : f32, '
            "b = inf : f64, c = -inf} : () -> (index)\n"
            '    "func.return"()\n  }\n}'
        )
        module = parse_module(text)
        printed = print_module(module)
        assert "-inf : f32" in printed
        assert print_module(parse_module(printed)) == printed

    def test_multiline_composite_keeps_line_numbers(self):
        text = (
            "module {\n"
            '  func.func @f() {\n'
            '    %0 = "arith.constant"() {value = 1, m = affine_map<(m, n)\n'
            "      -> (n, m)>} : () -> (index)\n"
            '    "oops.unknown"()\n'
            '    "func.return"()\n'
            "  }\n"
            "}"
        )
        with pytest.raises(ParseError, match=r"<mlir>:5:"):
            parse_module(text)

    def test_generic_with_no_operands_is_diagnosed(self):
        with pytest.raises(VerificationError,
                           match="at least one operand"):
            parse_module(
                "module {\n  func.func @f() {\n"
                '    "linalg.generic"() {indexing_maps = [], '
                "iterator_types = [], operandSegmentSizes = [0, 0]}\n"
                '    "func.return"()\n  }\n}',
                verify=True,
            )

    def test_bad_cache_bytes_option_is_a_compile_error(self):
        _, info = make_matmul_system(version=3, size=4)
        with pytest.raises(CompileError, match="cache-bytes"):
            parse_pass_pipeline("lower-to-accel{cache-bytes=abc}",
                                info=info)
