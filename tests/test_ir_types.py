"""Tests for repro.ir.types."""

import pytest

from repro.ir.types import (
    DYNAMIC,
    F32,
    I32,
    INDEX,
    FloatType,
    FunctionType,
    IntegerType,
    MemRefType,
    element_type_from_string,
)


class TestScalarTypes:
    def test_integer_str(self):
        assert str(IntegerType(32)) == "i32"
        assert str(IntegerType(1)) == "i1"

    def test_integer_equality_is_structural(self):
        assert IntegerType(32) == I32
        assert IntegerType(16) != I32

    def test_integer_width_must_be_positive(self):
        with pytest.raises(ValueError):
            IntegerType(0)
        with pytest.raises(ValueError):
            IntegerType(-8)

    def test_float_str(self):
        assert str(FloatType(32)) == "f32"
        assert str(FloatType(64)) == "f64"

    def test_float_rejects_odd_widths(self):
        with pytest.raises(ValueError):
            FloatType(24)

    def test_index_str(self):
        assert str(INDEX) == "index"

    def test_types_are_hashable(self):
        assert len({I32, IntegerType(32), F32, INDEX}) == 3


class TestMemRefType:
    def test_str_default_layout(self):
        t = MemRefType((4, 4), F32)
        assert str(t) == "memref<4x4xf32>"

    def test_str_strided_layout(self):
        t = MemRefType((4, 4), F32, strides=(80, 1), offset=DYNAMIC)
        assert "strided<[80, 1], offset: ?>" in str(t)

    def test_rank_and_elements(self):
        t = MemRefType((3, 5, 7), I32)
        assert t.rank == 3
        assert t.num_elements() == 105

    def test_row_major_strides(self):
        t = MemRefType((2, 3, 4), I32)
        assert t.row_major_strides() == (12, 4, 1)

    def test_layout_strides_defaults_to_row_major(self):
        t = MemRefType((2, 3), I32)
        assert t.layout_strides() == (3, 1)

    def test_explicit_strides_preserved(self):
        t = MemRefType((2, 3), I32, strides=(100, 1))
        assert t.layout_strides() == (100, 1)
        assert not t.is_contiguous_row_major()

    def test_contiguity(self):
        assert MemRefType((4, 8), I32).is_contiguous_row_major()
        assert MemRefType((4, 8), I32, strides=(8, 1)).is_contiguous_row_major()

    def test_innermost_unit_stride(self):
        assert MemRefType((4, 4), I32, strides=(80, 1)).innermost_unit_stride()
        assert not MemRefType((4, 4), I32, strides=(80, 2)).innermost_unit_stride()

    def test_stride_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemRefType((4, 4), I32, strides=(1,))

    def test_dynamic_dim_str(self):
        t = MemRefType((DYNAMIC, 4), I32)
        assert str(t) == "memref<?x4xi32>"
        assert not t.has_static_shape

    def test_num_elements_requires_static(self):
        with pytest.raises(ValueError):
            MemRefType((DYNAMIC,), I32).num_elements()


class TestFunctionType:
    def test_str_single_result(self):
        t = FunctionType((I32, F32), (I32,))
        assert str(t) == "(i32, f32) -> i32"

    def test_str_multi_result(self):
        t = FunctionType((I32,), (I32, F32))
        assert str(t) == "(i32) -> (i32, f32)"

    def test_empty(self):
        assert str(FunctionType()) == "() -> ()"


class TestElementTypeParsing:
    @pytest.mark.parametrize("name,expected", [
        ("i32", "i32"), ("int32", "i32"), ("i8", "i8"),
        ("f32", "f32"), ("float32", "f32"), ("float", "f32"),
        ("f64", "f64"), ("double", "f64"), ("index", "index"),
        ("INT32", "i32"),
    ])
    def test_aliases(self, name, expected):
        assert str(element_type_from_string(name)) == expected

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            element_type_from_string("quux")
