"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.soc import Board, make_pynq_z2


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "ambient_faults_incompatible: exact store-counter assertions that "
        "cannot hold when the environment injects REPRO_FAULTS",
    )


def pytest_collection_modifyitems(config, items):
    """CI's chaos leg runs the whole tier-1 suite under REPRO_FAULTS.

    Numeric results must stay bit-identical under injected faults —
    that is the point of the leg — but tests asserting *exact disk
    counter values* are definitionally invalid when reads/writes fail
    probabilistically, so they are skipped there.  (Tests that set
    REPRO_FAULTS themselves via monkeypatch are unaffected: the marker
    covers only ambient, externally injected faults.)
    """
    if not os.environ.get("REPRO_FAULTS"):
        return
    skip = pytest.mark.skip(
        reason="exact-counter assertions invalid under ambient REPRO_FAULTS"
    )
    for item in items:
        if item.get_closest_marker("ambient_faults_incompatible"):
            item.add_marker(skip)


@pytest.fixture(autouse=True)
def _isolate_kernel_store(monkeypatch):
    """Unit tests manage their own disk stores via tmp_path.

    CI exports REPRO_KERNEL_CACHE_DIR so the *benchmarks* reuse
    `.repro_cache` across runs; the unit tests assert exact cache
    stats and must not see an ambient store.
    """
    monkeypatch.delenv("REPRO_KERNEL_CACHE_DIR", raising=False)


@pytest.fixture
def board() -> Board:
    return make_pynq_z2()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_int_matrix(rng, rows, cols, low=-8, high=8):
    return rng.integers(low, high, (rows, cols)).astype(np.int32)
