"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.soc import Board, make_pynq_z2


@pytest.fixture
def board() -> Board:
    return make_pynq_z2()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_int_matrix(rng, rows, cols, low=-8, high=8):
    return rng.integers(low, high, (rows, cols)).astype(np.int32)
