"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.soc import Board, make_pynq_z2


@pytest.fixture(autouse=True)
def _isolate_kernel_store(monkeypatch):
    """Unit tests manage their own disk stores via tmp_path.

    CI exports REPRO_KERNEL_CACHE_DIR so the *benchmarks* reuse
    `.repro_cache` across runs; the unit tests assert exact cache
    stats and must not see an ambient store.
    """
    monkeypatch.delenv("REPRO_KERNEL_CACHE_DIR", raising=False)


@pytest.fixture
def board() -> Board:
    return make_pynq_z2()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_int_matrix(rng, rows, cols, low=-8, high=8):
    return rng.integers(low, high, (rows, cols)).astype(np.int32)
