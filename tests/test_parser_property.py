"""Property tests: random modules from registered dialect ops must reach
a parse∘print fixpoint, plus the seed-pinned regression corpus.

The Hypothesis test explores fresh seeds every run; the corpus test
replays ``tests/corpus/*.mlir`` — committed printouts of the same
generator at pinned seeds — so a parser or printer regression fails the
suite deterministically even where Hypothesis happens not to look.

Regenerate the corpus after an intentional syntax change with::

    PYTHONPATH=src:tests python -m support.gen_corpus
"""

import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_module, print_module
from repro.ir.verifier import verify
from support.gen_corpus import CORPUS_SEEDS
from support.irgen import random_attr_value, random_module

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.mlir"))


def assert_fixpoint(module):
    first = print_module(module)
    reparsed = parse_module(first)
    verify(reparsed.op)
    second = print_module(reparsed)
    assert second == first, (
        f"parse∘print is not a fixpoint:\n--- printed ---\n{first}\n"
        f"--- reprinted ---\n{second}"
    )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_random_modules_roundtrip(seed):
    assert_fixpoint(random_module(random.Random(seed)))


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_random_attribute_payloads_roundtrip(seed):
    """Attribute kinds alone, at higher volume than whole modules."""
    rng = random.Random(seed)
    module = random_module(random.Random(0))
    op = module.functions()[0].regions[0].entry_block.operations[0]
    for position in range(4):
        op.set_attr(f"fuzz{position}", random_attr_value(rng))
    assert_fixpoint(module)


def test_corpus_is_present():
    assert len(CORPUS_FILES) == len(CORPUS_SEEDS), (
        f"expected {len(CORPUS_SEEDS)} corpus files in {CORPUS_DIR}, "
        f"found {len(CORPUS_FILES)}; regenerate with "
        f"PYTHONPATH=src:tests python -m support.gen_corpus"
    )


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_roundtrip_is_exact(path):
    """Corpus files are canonical printouts: parse+print must be identity."""
    text = path.read_text()
    module = parse_module(text, filename=path.name)
    verify(module.op)
    assert print_module(module) + "\n" == text


@pytest.mark.parametrize("seed", CORPUS_SEEDS)
def test_corpus_matches_generator(seed):
    """The committed files are exactly what the pinned seeds generate."""
    path = CORPUS_DIR / f"seed_{seed}.mlir"
    assert path.exists()
    expected = print_module(random_module(random.Random(seed))) + "\n"
    assert path.read_text() == expected
