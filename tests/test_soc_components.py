"""Tests for memory, AXI streams, DMA engine, perf counters, board."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.accelerators import MatMulAccelerator
from repro.soc import AxiStreamFifo, Board, DmaEngine, MainMemory, make_pynq_z2
from repro.soc.axi import StreamUnderflow
from repro.soc.perf import PerfCounters
from repro.soc.timing import TimingModel, matmul_ops_per_cycle


class TestMainMemory:
    def test_regions_disjoint(self):
        memory = MainMemory()
        a = memory.allocate(1000, "a")
        b = memory.allocate(1000, "b")
        assert a.end <= b.base

    def test_alignment(self):
        memory = MainMemory(alignment=64)
        region = memory.allocate(10, "x")
        assert region.base % 64 == 0

    def test_find_region(self):
        memory = MainMemory()
        region = memory.allocate(128, "buf")
        assert memory.find_region(region.base + 5) is region
        with pytest.raises(KeyError):
            memory.find_region(0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            MainMemory().allocate(0)

    def test_duplicate_names_disambiguated(self):
        memory = MainMemory()
        memory.allocate(64, "buf")
        memory.allocate(64, "buf")
        assert memory.region_named("buf#2").size == 64


class TestAxiStreamFifo:
    def test_push_pop_order(self):
        fifo = AxiStreamFifo()
        fifo.push(np.array([1, 2, 3], dtype=np.int32))
        fifo.push(np.array([4, 5], dtype=np.int32))
        assert list(fifo.pop(4)) == [1, 2, 3, 4]
        assert list(fifo.pop(1)) == [5]

    def test_underflow_raises(self):
        fifo = AxiStreamFifo()
        fifo.push(np.array([1], dtype=np.int32))
        with pytest.raises(StreamUnderflow):
            fifo.pop(2)

    def test_pop_zero_words(self):
        fifo = AxiStreamFifo()
        assert fifo.pop(0).size == 0  # empty FIFO included
        fifo.push(np.array([7], dtype=np.int32))
        assert fifo.pop(0).size == 0
        assert list(fifo.pop(1)) == [7]

    def test_non_word_dtype_rejected(self):
        with pytest.raises(ValueError):
            AxiStreamFifo().push(np.array([1], dtype=np.int64))

    def test_float_words_supported(self):
        fifo = AxiStreamFifo()
        fifo.push(np.array([1.5, -2.0], dtype=np.float32))
        out = fifo.pop(2, dtype=np.float32)
        assert list(out) == [1.5, -2.0]

    def test_statistics(self):
        fifo = AxiStreamFifo()
        fifo.push(np.zeros(4, dtype=np.int32))
        fifo.push(np.zeros(2, dtype=np.int32))
        assert fifo.total_words_pushed == 6
        assert fifo.total_transactions == 2

    def test_peek(self):
        fifo = AxiStreamFifo()
        fifo.push(np.array([42, 1], dtype=np.int32))
        assert fifo.peek_word() == 42
        assert len(fifo) == 2

    @given(st.lists(st.lists(st.integers(-1000, 1000), min_size=1,
                             max_size=20), min_size=1, max_size=10),
           st.data())
    def test_chunked_pops_preserve_stream(self, bursts, data):
        fifo = AxiStreamFifo()
        expected = []
        for burst in bursts:
            fifo.push(np.array(burst, dtype=np.int32))
            expected.extend(burst)
        received = []
        remaining = len(expected)
        while remaining:
            take = data.draw(st.integers(1, remaining))
            received.extend(fifo.pop(take))
            remaining -= take
        assert received == expected


class TestDmaEngine:
    def make(self):
        board = make_pynq_z2()
        dma = DmaEngine(0, 4096, 4096, board.memory, board.timing)
        accel = MatMulAccelerator(4, version=3)
        dma.attach(accel)
        return board, dma, accel

    def test_send_pushes_to_fifo(self):
        _, dma, accel = self.make()
        dma.input_words[0] = 0xFF  # reset opcode
        seconds = dma.start_send(4, 0)
        assert seconds > 0
        assert len(accel.in_fifo) == 1

    def test_alignment_enforced(self):
        _, dma, _ = self.make()
        with pytest.raises(ValueError):
            dma.start_send(3, 0)
        with pytest.raises(ValueError):
            dma.start_send(4, 2)

    def test_region_bounds_enforced(self):
        _, dma, _ = self.make()
        with pytest.raises(ValueError):
            dma.start_send(8192, 0)

    def test_recv_round_trip(self):
        _, dma, accel = self.make()
        accel.out_fifo.push(np.array([7, 8], dtype=np.int32))
        dma.start_recv(8, 0)
        assert list(dma.output_words[:2]) == [7, 8]

    def test_transfer_time_scales_with_bytes(self):
        _, dma, accel = self.make()
        accel.out_fifo.push(np.zeros(512, dtype=np.int32))
        t_small = dma.start_recv(4, 0)
        t_large = dma.start_recv(2044, 4)
        assert t_large > t_small


class TestPerfCounters:
    def test_task_clock_from_elapsed(self):
        counters = PerfCounters(elapsed_seconds=0.25)
        assert counters.task_clock_ms() == 250.0

    def test_add_and_delta(self):
        a = PerfCounters(cpu_cycles=100, branch_instructions=5)
        b = PerfCounters(cpu_cycles=30, branch_instructions=2)
        a.add(b)
        assert a.cpu_cycles == 130
        delta = a.delta_since(b)
        assert delta.cpu_cycles == 100

    def test_normalized(self):
        run = PerfCounters(branch_instructions=50, cache_references=20,
                           elapsed_seconds=1.0)
        base = PerfCounters(branch_instructions=100, cache_references=80,
                            elapsed_seconds=4.0)
        norm = run.normalized_to(base)
        assert norm["branch-instructions"] == 0.5
        assert norm["cache-references"] == 0.25
        assert norm["task-clock"] == 0.25

    def test_normalized_zero_baseline(self):
        assert PerfCounters().normalized_to(PerfCounters()) == {
            "branch-instructions": 0.0, "cache-references": 0.0,
            "task-clock": 0.0,
        }


class TestBoard:
    def test_host_work_advances_clock(self):
        board = Board()
        board.host_work(650, branches=3)
        assert board.clock == pytest.approx(1e-6)
        assert board.counters.branch_instructions == 3

    def test_stall_charges_polling_branches(self):
        board = Board()
        board.stall_until(1e-3)
        timing = board.timing
        expected_polls = 1e-3 * timing.cpu_freq_hz / timing.poll_period_cycles
        assert board.counters.branch_instructions == pytest.approx(
            expected_polls * timing.poll_branches
        )
        assert board.counters.stall_cycles > 0

    def test_stall_in_past_is_noop(self):
        board = Board()
        board.host_work(6500)
        clock = board.clock
        board.stall_until(clock / 2)
        assert board.clock == clock

    def test_accelerator_scheduling(self):
        board = Board()
        board.schedule_accel_cycles(200e6)  # one second of accel work
        board.wait_for_accelerator()
        assert board.clock == pytest.approx(1.0)

    def test_measure_since(self):
        board = Board()
        board.host_work(100)
        snap = board.snapshot()
        board.host_work(250)
        delta = board.measure_since(snap)
        assert delta.cpu_cycles == 250


class TestTimingModel:
    def test_table1_throughputs(self):
        assert matmul_ops_per_cycle(4) == 10
        assert matmul_ops_per_cycle(8) == 60
        assert matmul_ops_per_cycle(16) == 112

    def test_interpolation_monotonic(self):
        values = [matmul_ops_per_cycle(s) for s in (4, 6, 8, 12, 16, 32)]
        assert values == sorted(values)

    def test_axi_transfer_time(self):
        timing = TimingModel()
        one_kib = timing.axi_transfer_seconds(1024)
        expected = 1024 / timing.axi_bytes_per_cycle / timing.accel_freq_hz
        assert one_kib == pytest.approx(expected)
