"""Golden round-trip fixtures: one file per dialect, covering every op.

Each ``tests/golden/ops/<dialect>.mlir`` stores the canonical printed
form of a module exercising that dialect's operations.  The tests pin
both directions at once — the parser must accept the stored text, and
the printer must reproduce it byte for byte — so any printer syntax
change shows up as a golden diff instead of landing silently.

The coverage test walks the parser's dialect registry: an op added to a
dialect without a golden fixture fails the suite until one is written.
"""

from pathlib import Path

import pytest

from repro.ir import parse_module, print_module, registered_ops
from repro.ir.verifier import verify

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "ops"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.mlir"))

#: Ops with custom printed syntax, spelled without quotes in the text.
_CUSTOM_SYNTAX = {
    "builtin.module": "module {",
    "func.func": "func.func @",
    "scf.for": "scf.for %",
}


def test_one_golden_file_per_dialect():
    names = {p.stem for p in GOLDEN_FILES}
    assert {"arith", "memref", "scf", "func", "linalg", "accel"} <= names


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_golden_roundtrip_is_exact(path):
    text = path.read_text()
    module = parse_module(text, filename=path.name)
    verify(module.op)
    assert print_module(module) + "\n" == text, (
        f"{path.name}: printer output diverged from the golden file; "
        f"if the syntax change is intentional, regenerate the fixture"
    )


def test_every_registered_op_has_golden_coverage():
    corpus = "\n".join(p.read_text() for p in GOLDEN_FILES)
    missing = []
    for name in registered_ops():
        marker = _CUSTOM_SYNTAX.get(name, f'"{name}"')
        if marker not in corpus:
            missing.append(name)
    assert not missing, (
        f"ops with no golden round-trip fixture: {missing}; add them to "
        f"tests/golden/ops/<dialect>.mlir"
    )


def test_registry_spans_all_six_dialects():
    dialects = {name.split(".", 1)[0] for name in registered_ops()}
    assert {"arith", "memref", "scf", "func", "linalg", "accel",
            "builtin"} <= dialects
