"""Tests for the flexible-tiling heuristics (Sec. IV-C) and frontends."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.frontends import (
    RESNET18_LAYERS,
    TinyBertConfig,
    TinyBertModel,
    scaled_layer,
    tinybert_matmul_shapes,
)
from repro.frontends.tinybert import attention_matmul_macs, other_layer_macs
from repro.heuristics import (
    best_configuration,
    candidate_tiles,
    square_tile_configuration,
    transfer_cost_model,
)
from repro.heuristics.flexible import all_square_strategies

QUANTUM = 16
CAPACITY = 16 * 16 * 16  # the v4-16 per-operand buffer


class TestCostModel:
    def test_candidate_tiles(self):
        assert candidate_tiles(64, 16) == [16, 32, 64]
        assert candidate_tiles(48, 16) == [16, 48]
        assert candidate_tiles(8, 16) == [8]  # fallback: the extent itself

    def test_ns_moves_most(self):
        m = n = k = 256
        costs = {
            flow: transfer_cost_model(m, n, k, 32, 32, 32, flow)[0]
            for flow in ("Ns", "As", "Bs", "Cs")
        }
        assert costs["Ns"] > costs["As"]
        assert costs["Ns"] > costs["Bs"]
        assert costs["Ns"] > costs["Cs"]

    def test_stationary_term_exact(self):
        # As: the A matrix moves exactly once.
        words, _ = transfer_cost_model(64, 64, 64, 64, 16, 64, "As")
        assert words == 64 * 64 + 64 * 64 * 1 + 64 * 64 * 1

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError):
            transfer_cost_model(64, 64, 64, 16, 16, 16, "Zs")


class TestSquareTile:
    def test_paper_fig14_square_choice(self):
        # Paper: "T = 32 was selected for all square flows because it is
        # the biggest value so the tiles fit inside the accelerator".
        for m, n, k in ((256, 32, 512), (32, 256, 512), (512, 256, 32)):
            choice = square_tile_configuration(m, n, k, "Cs", QUANTUM,
                                               CAPACITY)
            assert choice.tiles == (32, 32, 32)

    def test_capacity_respected(self):
        choice = square_tile_configuration(256, 256, 256, "Cs", QUANTUM,
                                           CAPACITY)
        assert choice.tile_m ** 2 <= CAPACITY

    def test_infeasible_reported(self):
        with pytest.raises(ValueError):
            square_tile_configuration(31, 33, 37, "Cs", 16, CAPACITY)

    def test_all_square_strategies(self):
        strategies = all_square_strategies(256, 32, 512, QUANTUM, CAPACITY)
        assert set(strategies) == \
            {"As-squareTile", "Bs-squareTile", "Cs-squareTile"}


class TestBestHeuristic:
    @pytest.mark.parametrize("shape,expected_flow", [
        ((256, 32, 512), "Cs"),   # paper annotation: Cs 128 32 32
        ((256, 512, 32), "As"),   # paper annotation: As 128 32 32
        # (512, 32, 256): the paper reports Cs 128 32 32; our transfer
        # model rates Bs within 5%% of Cs, see EXPERIMENTS.md (tested
        # separately below).
        ((32, 256, 512), "Cs"),   # paper annotation: Cs 32 128 32
        ((512, 256, 32), "Bs"),   # paper annotation: Bs 32 128 32
    ])
    def test_paper_fig14_best_flow(self, shape, expected_flow):
        m, n, k = shape
        best = best_configuration(m, n, k, QUANTUM, CAPACITY)
        assert best.flow == expected_flow

    def test_fig14_512_32_256_near_tie(self):
        # The paper picks Cs 128 32 32 here; our volume model ranks Bs
        # marginally cheaper.  Assert the tie is within 10%.
        best = best_configuration(512, 32, 256, QUANTUM, CAPACITY)
        cs_words, _ = transfer_cost_model(512, 32, 256, 128, 32, 32, "Cs")
        assert best.flow in ("Bs", "Cs")
        assert best.words_moved <= cs_words <= best.words_moved * 1.10

    def test_best_never_worse_than_square(self):
        for m, n, k in ((256, 32, 512), (32, 512, 256), (512, 32, 256)):
            best = best_configuration(m, n, k, QUANTUM, CAPACITY)
            for strategy in all_square_strategies(m, n, k, QUANTUM,
                                                  CAPACITY).values():
                assert best.words_moved <= strategy.words_moved

    def test_buffers_respected(self):
        best = best_configuration(512, 512, 512, QUANTUM, CAPACITY)
        assert best.tile_m * best.tile_k <= CAPACITY
        assert best.tile_k * best.tile_n <= CAPACITY
        assert best.tile_m * best.tile_n <= CAPACITY

    def test_label(self):
        best = best_configuration(256, 32, 512, QUANTUM, CAPACITY)
        assert best.label().startswith(best.flow)

    @settings(max_examples=20, deadline=None)
    @given(
        m=st.sampled_from([32, 64, 128, 256]),
        n=st.sampled_from([32, 64, 128, 256]),
        k=st.sampled_from([32, 64, 128, 256]),
    )
    def test_best_is_global_minimum(self, m, n, k):
        best = best_configuration(m, n, k, QUANTUM, CAPACITY)
        # Spot-check against a coarse exhaustive scan of square tiles.
        for flow in ("Ns", "As", "Bs", "Cs"):
            for tile in candidate_tiles(min(m, n, k), QUANTUM):
                if tile * tile > CAPACITY:
                    continue
                if any(d % tile for d in (m, n, k)):
                    continue
                words, _ = transfer_cost_model(m, n, k, tile, tile, tile,
                                               flow)
                assert best.words_moved <= words


class TestResNetLayers:
    def test_eleven_unique_layers(self):
        assert len(RESNET18_LAYERS) == 11
        assert len({layer.label for layer in RESNET18_LAYERS}) == 11

    def test_paper_labels_present(self):
        labels = {layer.label for layer in RESNET18_LAYERS}
        assert "56_64_1_128_2" in labels   # the one regressing layer
        assert "230_3_7_64_2" in labels    # the stem conv

    def test_output_geometry(self):
        stem = next(l for l in RESNET18_LAYERS if l.label == "230_3_7_64_2")
        assert stem.out_hw == 112

    def test_scaling_preserves_window_shape(self):
        layer = next(l for l in RESNET18_LAYERS
                     if l.label == "56_64_1_128_2")
        small = scaled_layer(layer, max_out_hw=6, max_out_ch=8)
        assert small.in_ch == layer.in_ch
        assert small.f_hw == layer.f_hw
        assert small.stride == layer.stride
        assert small.out_hw <= 6
        assert small.out_ch <= 8

    def test_scaling_idempotent_for_small_layers(self):
        layer = scaled_layer(RESNET18_LAYERS[0], 1000, 1000)
        assert layer == RESNET18_LAYERS[0]


class TestTinyBert:
    def test_gemm_workload_shapes(self):
        shapes = {s.name: s for s in tinybert_matmul_shapes()}
        assert shapes["qkv_proj"].count == 12       # 3 per layer, 4 layers
        assert shapes["ffn_up"].n == 1200
        assert shapes["qkv_proj"].m == 256          # batch 2 x seq 128

    def test_padding_to_quantum(self):
        shape = tinybert_matmul_shapes()[0]
        assert shape.padded(16) == (256, 320, 320)

    def test_matmul_share_of_cpu_runtime(self):
        config = TinyBertConfig()
        gemm_macs = sum(s.macs for s in tinybert_matmul_shapes(config))
        total = (gemm_macs + attention_matmul_macs(config)
                 + other_layer_macs(config))
        share = gemm_macs / total
        # Paper: accelerated matmuls are ~75% of original CPU runtime.
        assert 0.70 <= share <= 0.80

    def test_forward_shapes(self):
        config = TinyBertConfig(num_layers=1, seq_len=8, batch=1)
        model = TinyBertModel(config)
        x = np.random.default_rng(0).standard_normal(
            (8, config.hidden)
        ).astype(np.float32)
        out = model.forward(x)
        assert out.shape == (8, config.hidden)
        assert np.isfinite(out).all()

    def test_forward_gemm_hook_called_for_projections(self):
        config = TinyBertConfig(num_layers=2, seq_len=8, batch=1)
        model = TinyBertModel(config)
        calls = []

        def spy(a, b):
            calls.append((a.shape, b.shape))
            return a @ b

        x = np.zeros((8, config.hidden), np.float32)
        model.forward(x, matmul_fn=spy)
        # 6 offloadable GEMMs per layer (q, k, v, out, ffn up, ffn down).
        assert len(calls) == 12

    def test_forward_deterministic(self):
        config = TinyBertConfig(num_layers=1, seq_len=4, batch=1)
        x = np.ones((4, config.hidden), np.float32)
        out1 = TinyBertModel(config, seed=7).forward(x)
        out2 = TinyBertModel(config, seed=7).forward(x)
        assert np.array_equal(out1, out2)

    def test_bad_activation_shape_rejected(self):
        model = TinyBertModel(TinyBertConfig(num_layers=1))
        with pytest.raises(ValueError):
            model.forward(np.zeros((8, 99), np.float32))
