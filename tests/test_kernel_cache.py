"""Tests for the compiled-kernel cache (flow-exploration sweeps)."""

import numpy as np
import pytest

from repro.accelerators import make_matmul_system
from repro.accelerators.catalog import VERSION_FLOWS
from repro.compiler import (
    AXI4MLIRCompiler,
    KernelCache,
    accelerator_fingerprint,
    default_kernel_cache,
)
from repro.soc import make_pynq_z2


@pytest.fixture
def cache():
    return KernelCache()


def make_compiler(cache, version=3, size=8, flow="Ns", **kwargs):
    _, info = make_matmul_system(version, size, flow=flow)
    return AXI4MLIRCompiler(info, kernel_cache=cache, **kwargs)


class TestKernelCache:
    def test_second_compile_hits(self, cache):
        kernel_a = make_compiler(cache).compile_matmul(32, 32, 32)
        kernel_b = make_compiler(cache).compile_matmul(32, 32, 32)
        stats = cache.stats()
        trace_stats = stats.pop("trace")
        assert stats == {"hits": 1, "misses": 1, "entries": 1}
        assert set(trace_stats) == {"synthesized", "recorded",
                                    "synth_fallback", "disk_loaded",
                                    "manual_recorded", "manual_fallback",
                                    "metrics_plan_hits",
                                    "metrics_plan_misses",
                                    "metrics_plan_fallback",
                                    "plan_incremental_hits",
                                    "component_memo_hits",
                                    "component_memo_misses",
                                    "model_plan_hits",
                                    "model_plan_misses",
                                    "model_plan_step_hits",
                                    "model_plan_fallback",
                                    "model_plan_divergence",
                                    "model_plan_stale",
                                    "model_plan_workers"}
        assert kernel_a.entry_point is kernel_b.entry_point
        assert kernel_a.source == kernel_b.source

    def test_specialized_copies_share_lowering(self, cache):
        fast = make_compiler(cache, specialized_copies=True) \
            .compile_matmul(32, 32, 32)
        slow = make_compiler(cache, specialized_copies=False) \
            .compile_matmul(32, 32, 32)
        assert cache.misses == 1 and cache.hits == 1
        assert fast.entry_point is slow.entry_point
        assert fast.specialized_copies and not slow.specialized_copies

    def test_distinct_configs_do_not_collide(self, cache):
        make_compiler(cache, flow="Ns").compile_matmul(32, 32, 32)
        make_compiler(cache, flow="Cs").compile_matmul(32, 32, 32)
        make_compiler(cache, flow="Ns").compile_matmul(64, 32, 32)
        make_compiler(cache, size=16, flow="Ns").compile_matmul(32, 32, 32)
        assert cache.misses == 4 and cache.hits == 0

    def test_flow_sweep_compiles_each_config_once(self, cache):
        """The fig11 acceptance criterion: one lowering per (flow, shape)."""
        configs = [
            (dims, size, version, flow)
            for dims in (32, 64)
            for size in (8, 16)
            for version in (2, 3)
            for flow in VERSION_FLOWS[version]
        ]
        for specialized in (False, True):  # fig11 then fig12/13 settings
            for dims, size, version, flow in configs:
                _, info = make_matmul_system(version, size, flow=flow)
                compiler = AXI4MLIRCompiler(
                    info, specialized_copies=specialized, kernel_cache=cache
                )
                compiler.compile_matmul(dims, dims, dims)
        assert cache.misses == len(configs)
        assert cache.hits == len(configs)

    def test_cached_kernel_runs_correctly(self, cache):
        hw, info = make_matmul_system(3, 8, flow="Cs")
        AXI4MLIRCompiler(info, kernel_cache=cache).compile_matmul(32, 32, 32)
        kernel = AXI4MLIRCompiler(info, kernel_cache=cache) \
            .compile_matmul(32, 32, 32)
        assert cache.hits == 1
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(5)
        a = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        b = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        c = np.zeros((32, 32), np.int32)
        counters = kernel.run(board, a, b, c)
        assert np.array_equal(c, a.astype(np.int64) @ b.astype(np.int64))
        assert counters.task_clock_ms() > 0

    def test_cache_counters_match_uncached(self):
        """A cache hit must not change measured results."""

        def measure(**compiler_kwargs):
            hw, info = make_matmul_system(3, 8, flow="As")
            board = make_pynq_z2()
            board.attach_accelerator(hw)
            kernel = AXI4MLIRCompiler(info, **compiler_kwargs) \
                .compile_matmul(32, 32, 32)
            rng = np.random.default_rng(9)
            a = rng.integers(-5, 5, (32, 32)).astype(np.int32)
            b = rng.integers(-5, 5, (32, 32)).astype(np.int32)
            c = np.zeros((32, 32), np.int32)
            return kernel.run(board, a, b, c).as_dict()

        cache = KernelCache()
        first = measure(kernel_cache=cache)
        cached = measure(kernel_cache=cache)
        uncached = measure(use_kernel_cache=False)
        assert cache.hits == 1
        assert first == cached == uncached

    def test_eviction_respects_maxsize(self):
        cache = KernelCache(maxsize=2)
        for dims in (16, 32, 48):
            make_compiler(cache).compile_matmul(dims, dims, dims)
        assert len(cache) == 2
        make_compiler(cache).compile_matmul(16, 16, 16)  # evicted → miss
        assert cache.misses == 4

    def test_opt_out_bypasses_global_cache(self):
        _, info = make_matmul_system(3, 8, flow="Ns")
        compiler = AXI4MLIRCompiler(info, use_kernel_cache=False)
        assert compiler.kernel_cache is None

    def test_default_is_process_global(self):
        _, info = make_matmul_system(3, 8, flow="Ns")
        compiler = AXI4MLIRCompiler(info)
        assert compiler.kernel_cache is default_kernel_cache()

    def test_fingerprint_distinguishes_flows(self):
        _, ns = make_matmul_system(3, 8, flow="Ns")
        _, cs = make_matmul_system(3, 8, flow="Cs")
        assert accelerator_fingerprint(ns) != accelerator_fingerprint(cs)
        _, ns2 = make_matmul_system(3, 8, flow="Ns")
        assert accelerator_fingerprint(ns) == accelerator_fingerprint(ns2)


@pytest.mark.ambient_faults_incompatible
class TestDiskKernelStore:
    """The on-disk store (REPRO_KERNEL_CACHE_DIR / .repro_cache)."""

    @staticmethod
    def entry_files(store) -> list:
        import pathlib
        return sorted(pathlib.Path(store, "objects").glob("*/*.entry"))

    def test_load_or_build_across_cache_instances(self, tmp_path):
        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        built = make_compiler(writer).compile_matmul(32, 32, 32)
        assert writer.disk_hits == 0 and writer.disk_misses == 1

        reader = KernelCache(disk_dir=store)  # fresh memory cache
        loaded = make_compiler(reader).compile_matmul(32, 32, 32)
        assert reader.disk_hits == 1
        assert loaded.source == built.source
        assert loaded.func_name == built.func_name
        assert loaded.parameters == built.parameters
        assert loaded.schedule_table == built.schedule_table
        assert loaded.plan is not None

    def test_env_var_enables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR",
                           str(tmp_path / "env_cache"))
        writer = KernelCache()
        make_compiler(writer).compile_matmul(16, 16, 16)
        reader = KernelCache()
        make_compiler(reader).compile_matmul(16, 16, 16)
        assert reader.disk_hits == 1
        stats = reader.stats()
        assert stats["disk_hits"] == 1
        assert stats["disk_dir"].endswith("env_cache")

    def test_stats_stay_minimal_without_store(self, cache):
        make_compiler(cache).compile_matmul(16, 16, 16)
        assert set(cache.stats()) == {"hits", "misses", "entries", "trace"}

    def test_loaded_kernel_runs_identically(self, tmp_path):
        store = str(tmp_path / "repro_cache")

        def measure(kernel_cache):
            hw, info = make_matmul_system(3, 8, flow="Cs")
            board = make_pynq_z2()
            board.attach_accelerator(hw)
            kernel = AXI4MLIRCompiler(info, kernel_cache=kernel_cache) \
                .compile_matmul(32, 32, 32)
            rng = np.random.default_rng(21)
            a = rng.integers(-5, 5, (32, 32)).astype(np.int32)
            b = rng.integers(-5, 5, (32, 32)).astype(np.int32)
            c = np.zeros((32, 32), np.int32)
            counters = kernel.run(board, a, b, c)
            return counters.as_dict(), c.tobytes()

        fresh = measure(KernelCache(disk_dir=store))
        from_disk_cache = KernelCache(disk_dir=store)
        loaded = measure(from_disk_cache)
        assert from_disk_cache.disk_hits == 1
        assert fresh == loaded

    def test_store_version_bump_invalidates_entries(self, tmp_path,
                                                    monkeypatch):
        import repro.compiler as compiler_mod

        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        make_compiler(writer).compile_matmul(16, 16, 16)
        monkeypatch.setattr(compiler_mod, "KERNEL_STORE_VERSION",
                            compiler_mod.KERNEL_STORE_VERSION + 1)
        reader = KernelCache(disk_dir=store)
        make_compiler(reader).compile_matmul(16, 16, 16)
        assert reader.disk_hits == 0  # old-format entry never loads

    def _run(self, kernel, seed=33):
        hw, _ = make_matmul_system(3, 8, flow="Ns")
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(seed)
        a = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        b = rng.integers(-5, 5, (32, 32)).astype(np.int32)
        c = np.zeros((32, 32), np.int32)
        counters = kernel.run(board, a, b, c)
        return counters.as_dict(), c.tobytes()

    def test_trace_round_trip(self, tmp_path):
        """Warm processes skip recording *and* synthesis entirely."""
        from repro.execution import TRACE_COUNTERS

        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        kernel = make_compiler(writer).compile_matmul(32, 32, 32)
        fresh = self._run(kernel)   # first run persists the trace

        before = dict(TRACE_COUNTERS)
        reader = KernelCache(disk_dir=store)
        loaded = make_compiler(reader).compile_matmul(32, 32, 32)
        assert reader.disk_hits == 1
        assert TRACE_COUNTERS["disk_loaded"] == before["disk_loaded"] + 1
        trace = loaded.trace_state.trace
        assert trace is not None
        assert trace.num_events == kernel.trace_state.trace.num_events
        # The decoded replay plan rides along with the trace.
        assert trace.decoded
        warmed = self._run(loaded)
        assert warmed == fresh
        assert TRACE_COUNTERS["synthesized"] == before["synthesized"]
        assert TRACE_COUNTERS["recorded"] == before["recorded"]

    def test_stale_trace_schema_evicts_trace_only(self, tmp_path,
                                                  monkeypatch):
        import repro.compiler as compiler_mod

        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        kernel = make_compiler(writer).compile_matmul(32, 32, 32)
        fresh = self._run(kernel)

        monkeypatch.setattr(compiler_mod, "TRACE_SCHEMA_VERSION",
                            compiler_mod.TRACE_SCHEMA_VERSION + 1)
        reader = KernelCache(disk_dir=store)
        loaded = make_compiler(reader).compile_matmul(32, 32, 32)
        assert reader.disk_hits == 1      # the lowered kernel still loads
        assert loaded.trace_state.trace is None  # stale trace evicted
        assert self._run(loaded) == fresh  # rebuilt via synthesis

    def test_metrics_plan_round_trip(self, tmp_path):
        """Warm processes apply the persisted MetricsPlan in O(state)."""
        from repro.execution import METRICS_PLAN_COUNTERS

        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        kernel = make_compiler(writer).compile_matmul(32, 32, 32)
        fresh = self._run(kernel)   # first run persists trace + plan
        assert kernel.trace_state.trace.metrics_plans

        reader = KernelCache(disk_dir=store)
        loaded = make_compiler(reader).compile_matmul(32, 32, 32)
        assert reader.disk_hits == 1
        trace = loaded.trace_state.trace
        assert trace is not None and trace.metrics_plans
        before = dict(METRICS_PLAN_COUNTERS)
        warmed = self._run(loaded)
        assert warmed == fresh
        # The fresh board fingerprints identically, so the loaded plan
        # is applied — no rebuild.
        assert METRICS_PLAN_COUNTERS["metrics_plan_hits"] \
            == before["metrics_plan_hits"] + 1
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] \
            == before["metrics_plan_misses"]

    def test_component_digest_round_trips_with_trace(self, tmp_path):
        """A metrics-built trace persists its component-memo digest.

        The digest is a plain hex string precisely so the store codec
        can carry it: warm processes then key the cross-entry component
        memo without re-hashing the trace's structural arrays.  A
        non-string digest would make the whole post-replay payload
        unencodable and silently demote plans to memory-only.
        """
        from repro.execution.metrics import _trace_component_digest

        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        kernel = make_compiler(writer).compile_matmul(32, 32, 32)
        self._run(kernel)   # builds the plan -> computes the digest
        fresh = kernel.trace_state.trace
        digest = getattr(fresh, "component_digest", None)
        assert isinstance(digest, str) and digest

        reader = KernelCache(disk_dir=store)
        loaded = make_compiler(reader).compile_matmul(32, 32, 32)
        trace = loaded.trace_state.trace
        assert trace.metrics_plans  # the persist hook must not degrade
        assert getattr(trace, "component_digest", None) == digest
        # _trace_component_digest must serve the persisted value as-is.
        assert _trace_component_digest(trace) == digest

    def test_stale_metrics_schema_evicts_only_plan(self, tmp_path,
                                                   monkeypatch):
        import repro.compiler as compiler_mod

        store = str(tmp_path / "repro_cache")
        writer = KernelCache(disk_dir=store)
        kernel = make_compiler(writer).compile_matmul(32, 32, 32)
        fresh = self._run(kernel)

        monkeypatch.setattr(compiler_mod, "METRICS_PLAN_SCHEMA_VERSION",
                            compiler_mod.METRICS_PLAN_SCHEMA_VERSION + 1)
        reader = KernelCache(disk_dir=store)
        loaded = make_compiler(reader).compile_matmul(32, 32, 32)
        assert reader.disk_hits == 1           # the kernel still loads
        trace = loaded.trace_state.trace
        assert trace is not None               # ...and so does the trace
        assert not trace.metrics_plans         # stale plans evicted
        assert self._run(loaded) == fresh      # rebuilt from the trace
        # That replay must refresh the store with current-schema plans:
        # a third process loads them and takes the O(state) hit path.
        refreshed = KernelCache(disk_dir=store)
        reloaded = make_compiler(refreshed).compile_matmul(32, 32, 32)
        assert reloaded.trace_state.trace.metrics_plans

    def test_corrupt_entry_is_quarantined_and_rebuilt(self, tmp_path):
        """Corruption is counted apart from misses, the file moves to
        corrupt/, and the rebuild republishes a loadable entry."""
        store = tmp_path / "repro_cache"
        writer = KernelCache(disk_dir=str(store))
        make_compiler(writer).compile_matmul(16, 16, 16)
        entries = self.entry_files(store)
        assert len(entries) == 1
        entries[0].write_bytes(b"not a kernel store entry")

        reader = KernelCache(disk_dir=str(store))
        kernel = make_compiler(reader).compile_matmul(16, 16, 16)
        assert kernel.source  # rebuilt from scratch
        assert reader.disk_corrupt == 1
        assert reader.disk_hits == 0 and reader.disk_misses == 0
        quarantined = list((store / "corrupt").iterdir())
        assert len(quarantined) == 1  # evidence kept, never re-read

        # The rebuild republished: a third process loads cleanly.
        third = KernelCache(disk_dir=str(store))
        make_compiler(third).compile_matmul(16, 16, 16)
        assert third.disk_hits == 1
        assert third.disk_corrupt == 0

    def test_truncated_entry_is_corrupt_not_miss(self, tmp_path):
        """A writer killed mid-crash leaves either no entry (tmp files
        are invisible) or, with a torn tool, a short file — which must
        fail the checksum, not load garbage."""
        store = tmp_path / "repro_cache"
        writer = KernelCache(disk_dir=str(store))
        make_compiler(writer).compile_matmul(16, 16, 16)
        entry = self.entry_files(store)[0]
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) // 2])
        reader = KernelCache(disk_dir=str(store))
        make_compiler(reader).compile_matmul(16, 16, 16)
        assert reader.disk_corrupt == 1 and reader.disk_misses == 0

    def test_legacy_pickle_entries_are_ignored(self, tmp_path):
        """Version-skew: store-v2 flat ``kernel-*.pkl`` files alongside
        new entries are never consulted (and never crash the loader)."""
        store = tmp_path / "repro_cache"
        store.mkdir()
        (store / "kernel-deadbeef0000-abc.pkl").write_bytes(b"\x80\x04old")
        cache = KernelCache(disk_dir=str(store))
        make_compiler(cache).compile_matmul(16, 16, 16)
        assert cache.disk_misses == 1 and cache.disk_corrupt == 0
        reader = KernelCache(disk_dir=str(store))
        make_compiler(reader).compile_matmul(16, 16, 16)
        assert reader.disk_hits == 1
        assert (store / "kernel-deadbeef0000-abc.pkl").exists()

    def test_publish_leaves_no_tmp_litter(self, tmp_path):
        store = tmp_path / "repro_cache"
        cache = KernelCache(disk_dir=str(store))
        kernel = make_compiler(cache).compile_matmul(32, 32, 32)
        self._run(kernel)  # persist hook rewrites the entry
        leftovers = [p for p in store.rglob("*") if ".tmp-" in p.name]
        assert leftovers == []
