"""Tests for the cpp_MANUAL drivers and the mlir_CPU reference model."""

import numpy as np
import pytest

from repro.accelerators import ConvAccelerator, MatMulAccelerator
from repro.baselines import (
    cpu_conv,
    cpu_matmul,
    manual_conv_driver,
    manual_matmul_driver,
)
from repro.soc import make_pynq_z2


def run_manual(version, size, flow, dims, rng, tiles=None):
    board = make_pynq_z2()
    board.attach_accelerator(MatMulAccelerator(size, version))
    a = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
    b = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
    c = np.zeros((dims, dims), np.int32)
    counters = manual_matmul_driver(board, a, b, c, version, size, flow,
                                    tiles=tiles)
    return a, b, c, counters


class TestManualMatmul:
    @pytest.mark.parametrize("version,flow", [
        (1, "Ns"), (2, "Ns"), (2, "As"), (2, "Bs"),
        (3, "Ns"), (3, "As"), (3, "Bs"), (3, "Cs"),
    ])
    def test_correct(self, version, flow, rng):
        a, b, c, _ = run_manual(version, 8, flow, 32, rng)
        assert np.array_equal(c, a @ b)

    def test_v4_flexible_tiles(self, rng):
        board = make_pynq_z2()
        board.attach_accelerator(MatMulAccelerator(16, version=4))
        a = rng.integers(-7, 7, (64, 128)).astype(np.int32)
        b = rng.integers(-7, 7, (128, 32)).astype(np.int32)
        c = np.zeros((64, 32), np.int32)
        manual_matmul_driver(board, a, b, c, 4, 16, "Cs",
                             tiles=(32, 16, 64))
        assert np.array_equal(c, a @ b)

    def test_bad_shapes_rejected(self, rng):
        board = make_pynq_z2()
        board.attach_accelerator(MatMulAccelerator(8, version=3))
        a = np.zeros((10, 10), np.int32)
        with pytest.raises(ValueError):
            manual_matmul_driver(board, a, a, a.copy(), 3, 8, "Ns")

    def test_unsupported_flow_rejected(self, rng):
        board = make_pynq_z2()
        board.attach_accelerator(MatMulAccelerator(8, version=2))
        a = np.zeros((16, 16), np.int32)
        with pytest.raises(ValueError):
            manual_matmul_driver(board, a, a, a.copy(), 2, 8, "Cs")

    def test_stationary_flows_move_less_data(self, rng):
        _, _, _, ns = run_manual(3, 8, "Ns", 64, rng)
        _, _, _, as_ = run_manual(3, 8, "As", 64, rng)
        _, _, _, cs = run_manual(3, 8, "Cs", 64, rng)
        assert as_.dma_bytes_to_accel < ns.dma_bytes_to_accel
        assert cs.dma_bytes_from_accel < ns.dma_bytes_from_accel


class TestManualConv:
    def test_correct(self, rng):
        board = make_pynq_z2()
        board.attach_accelerator(ConvAccelerator(max_ic=8, max_fhw=3))
        image = rng.integers(-4, 4, (1, 8, 7, 7)).astype(np.int32)
        weights = rng.integers(-4, 4, (4, 8, 3, 3)).astype(np.int32)
        expected, _ = cpu_conv(make_pynq_z2(), image, weights)
        out = np.zeros_like(expected)
        manual_conv_driver(board, image, weights, out)
        assert np.array_equal(out, expected)

    def test_strided(self, rng):
        board = make_pynq_z2()
        board.attach_accelerator(ConvAccelerator(max_ic=4, max_fhw=3))
        image = rng.integers(-4, 4, (1, 4, 9, 9)).astype(np.int32)
        weights = rng.integers(-4, 4, (2, 4, 3, 3)).astype(np.int32)
        expected, _ = cpu_conv(make_pynq_z2(), image, weights, stride=2)
        out = np.zeros_like(expected)
        manual_conv_driver(board, image, weights, out, stride=2)
        assert np.array_equal(out, expected)

    def test_channel_mismatch_rejected(self):
        board = make_pynq_z2()
        board.attach_accelerator(ConvAccelerator())
        with pytest.raises(ValueError):
            manual_conv_driver(
                board,
                np.zeros((1, 4, 7, 7), np.int32),
                np.zeros((2, 8, 3, 3), np.int32),
                np.zeros((1, 2, 5, 5), np.int32),
            )


class TestCpuReference:
    def test_exact_matmul_extreme_values(self, board):
        # INT32_MIN wraps under np.abs; the float64 fast-path guard must
        # reject such inputs and fall back to exact int64 arithmetic.
        from repro.numerics import exact_int_matmul as _exact_int_matmul

        a = np.full((1, 4), -2 ** 31, dtype=np.int32)
        b = np.full((4, 1), 2 ** 31 - 1, dtype=np.int32)
        expected = a.astype(np.int64) @ b.astype(np.int64)
        assert _exact_int_matmul(a, b)[0, 0] == expected[0, 0]

    def test_matmul_functional(self, rng, board):
        a = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        b = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        c, counters = cpu_matmul(board, a, b)
        assert np.array_equal(c, a @ b)
        assert counters.cpu_cycles > 0
        assert counters.task_clock_ms() > 0

    def test_matmul_accumulates_into_given_c(self, rng, board):
        a = rng.integers(-7, 7, (8, 8)).astype(np.int32)
        b = rng.integers(-7, 7, (8, 8)).astype(np.int32)
        c = np.ones((8, 8), np.int32)
        cpu_matmul(board, a, b, c)
        assert np.array_equal(c, a @ b + 1)

    def test_matmul_cost_scales_cubically(self, board, rng):
        a64 = np.ones((64, 64), np.int32)
        a128 = np.ones((128, 128), np.int32)
        _, small = cpu_matmul(board, a64, a64)
        _, large = cpu_matmul(board, a128, a128)
        ratio = large.cpu_cycles / small.cpu_cycles
        assert 7.5 <= ratio <= 8.5

    def test_large_working_set_pays_misses(self, rng):
        board_small = make_pynq_z2()
        board_large = make_pynq_z2()
        a = np.ones((32, 32), np.int32)
        big = np.ones((512, 512), np.int32)
        _, small = cpu_matmul(board_small, a, a)
        _, large = cpu_matmul(board_large, big, big)
        per_mac_small = small.cpu_cycles / 32 ** 3
        per_mac_large = large.cpu_cycles / 512 ** 3
        assert per_mac_large > per_mac_small

    def test_conv_functional_matches_direct(self, rng, board):
        image = rng.integers(-4, 4, (2, 3, 8, 8)).astype(np.int32)
        weights = rng.integers(-4, 4, (4, 3, 3, 3)).astype(np.int32)
        out, _ = cpu_conv(board, image, weights, stride=1)
        # direct reference
        expected = np.zeros_like(out)
        for n in range(2):
            for f in range(4):
                for oh in range(6):
                    for ow in range(6):
                        expected[n, f, oh, ow] = np.sum(
                            image[n, :, oh:oh + 3, ow:ow + 3] * weights[f]
                        )
        assert np.array_equal(out, expected)

    def test_conv_shape_validation(self, board):
        with pytest.raises(ValueError):
            cpu_conv(board, np.zeros((1, 3, 8, 8), np.int32),
                     np.zeros((4, 5, 3, 3), np.int32))

    def test_matmul_shape_validation(self, board):
        with pytest.raises(ValueError):
            cpu_matmul(board, np.zeros((4, 5), np.int32),
                       np.zeros((4, 5), np.int32))
