"""Tests for configuration parsing (paper Fig. 5)."""

import json

import pytest

from repro.accel_config import (
    AcceleratorInfo,
    ConfigError,
    CPUInfo,
    load_config,
    parse_config,
)
from repro.accel_config.parser import parse_accelerator, parse_cpu, parse_size
from repro.accelerators import matmul_config_dict
from repro.opcodes import parse_opcode_flow, parse_opcode_map


def full_config_dict():
    return {
        "cpu": {
            "cache-levels": ["32K", "512K"],
            "cache-types": ["data", "shared"],
        },
        "accelerators": [matmul_config_dict(3, 8, "Cs")],
    }


class TestParseSize:
    @pytest.mark.parametrize("text,value", [
        (32768, 32768), ("32K", 32768), ("512K", 524288),
        ("1M", 1048576), ("0xFF00", 0xFF00), ("128", 128),
    ])
    def test_accepted(self, text, value):
        assert parse_size(text) == value

    def test_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("lots")


class TestCpuSection:
    def test_paper_fig5_cpu(self):
        cpu = parse_cpu({
            "cache-levels": ["32K", "512K"],
            "cache-types": ["data", "shared"],
        })
        assert cpu.l1_data_size == 32 * 1024
        assert cpu.last_level_size == 512 * 1024

    def test_defaults_are_pynq_z2(self):
        cpu = CPUInfo()
        assert cpu.frequency_hz == 650e6
        assert cpu.cache_levels == (32 * 1024, 512 * 1024)

    def test_mismatched_levels_rejected(self):
        with pytest.raises(ConfigError):
            parse_cpu({"cache-levels": [1024], "cache-types": ["data", "x"]})


class TestAcceleratorSection:
    def test_catalog_config_round_trip(self):
        info = parse_accelerator(matmul_config_dict(3, 8, "Cs"))
        assert info.name == "matmul_v3_8"
        assert info.selected_flow == "Cs"
        assert info.dims == ("m", "n", "k")
        assert info.operand_names() == ("A", "B", "C")
        assert str(info.data_type) == "i32"
        assert "sA" in info.opcode_map

    def test_missing_required_key(self):
        config = matmul_config_dict(3, 8)
        del config["kernel"]
        with pytest.raises(ConfigError, match="kernel"):
            parse_accelerator(config)

    def test_bad_opcode_map_reported(self):
        config = matmul_config_dict(3, 8)
        config["opcode_map"] = "opcode_map < broken"
        with pytest.raises(ConfigError, match="opcode_map"):
            parse_accelerator(config)

    def test_flow_referencing_unknown_opcode(self):
        config = matmul_config_dict(3, 8)
        config["opcode_flow_map"] = {"bad": "(nothere)"}
        config["selected_flow"] = "bad"
        with pytest.raises(ConfigError):
            parse_accelerator(config)

    def test_selected_flow_must_exist(self):
        config = matmul_config_dict(3, 8)
        config["selected_flow"] = "Zs"
        with pytest.raises(ConfigError):
            parse_accelerator(config)

    def test_accel_size_dims_mismatch(self):
        config = matmul_config_dict(3, 8)
        config["accel_size"] = [8, 8]
        with pytest.raises(ConfigError):
            parse_accelerator(config)

    def test_operand_with_unknown_dim(self):
        config = matmul_config_dict(3, 8)
        config["data"] = {"A": ["m", "zz"], "B": ["k", "n"], "C": ["m", "n"]}
        with pytest.raises(ConfigError):
            parse_accelerator(config)

    def test_loop_permutation_validated(self):
        config = matmul_config_dict(3, 8)
        config["loop_permutation"] = ["m", "q", "k"]
        with pytest.raises(ConfigError):
            parse_accelerator(config)

    def test_flow_switch_helper(self):
        info = parse_accelerator(matmul_config_dict(3, 8, "Ns"))
        cs = info.with_flow("Cs")
        assert cs.selected_flow == "Cs"
        assert info.selected_flow == "Ns"
        with pytest.raises(KeyError):
            info.with_flow("Xx")

    def test_accel_size_override_helper(self):
        info = parse_accelerator(matmul_config_dict(4, 16))
        resized = info.with_accel_size((32, 16, 64))
        assert resized.accel_size == (32, 16, 64)


class TestFullConfig:
    def test_parse_config(self):
        system = parse_config(full_config_dict())
        assert system.cpu.l1_data_size == 32 * 1024
        assert system.accelerator().name == "matmul_v3_8"

    def test_accelerator_lookup_by_name(self):
        data = full_config_dict()
        data["accelerators"].append(matmul_config_dict(1, 4))
        system = parse_config(data)
        assert system.accelerator("matmul_v1_4").version == "1.0"
        with pytest.raises(KeyError):
            system.accelerator()  # ambiguous
        with pytest.raises(KeyError):
            system.accelerator("nope")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "system.json"
        path.write_text(json.dumps(full_config_dict()))
        system = load_config(path)
        assert system.accelerator().selected_flow == "Cs"

    def test_invalid_json_reported(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config(path)

    def test_accelerators_must_be_list(self):
        with pytest.raises(ConfigError):
            parse_config({"accelerators": {"a": 1}})


class TestSchemaInvariants:
    def test_direct_construction_validates(self):
        opcode_map = parse_opcode_map("opcode_map < go = [send(0)] >")
        flow = parse_opcode_flow("(go)")
        with pytest.raises(ValueError):
            AcceleratorInfo(
                name="x", kernel="linalg.matmul",
                accel_size=(4, 4), data_type=None,  # wrong arity
                dims=("m", "n", "k"),
                data=(("A", ("m", "k")),),
                opcode_map=opcode_map,
                opcode_flows=(("f", flow),),
                selected_flow="f",
            )

    def test_tile_sizes_mapping(self):
        info = parse_accelerator(matmul_config_dict(3, 8))
        assert info.tile_sizes() == {"m": 8, "n": 8, "k": 8}
