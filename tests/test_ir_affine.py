"""Tests for repro.ir.affine: expressions, maps, and the parser."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.affine import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineMap,
    AffineParseError,
    parse_affine_map,
)


class TestExpressions:
    def test_dim_evaluate(self):
        assert AffineDimExpr(1).evaluate([10, 20, 30]) == 20

    def test_constant_evaluate(self):
        assert AffineConstantExpr(7).evaluate([]) == 7

    def test_add_mul(self):
        expr = AffineBinaryExpr(
            "+",
            AffineBinaryExpr("*", AffineDimExpr(0), AffineConstantExpr(2)),
            AffineDimExpr(1),
        )
        assert expr.evaluate([3, 4]) == 10

    def test_mod_floordiv(self):
        mod = AffineBinaryExpr("mod", AffineDimExpr(0), AffineConstantExpr(4))
        div = AffineBinaryExpr("floordiv", AffineDimExpr(0),
                               AffineConstantExpr(4))
        assert mod.evaluate([11]) == 3
        assert div.evaluate([11]) == 2

    def test_used_dims(self):
        expr = AffineBinaryExpr("+", AffineDimExpr(0), AffineDimExpr(2))
        assert expr.used_dims() == frozenset({0, 2})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            AffineBinaryExpr("^", AffineDimExpr(0), AffineDimExpr(1))


class TestAffineMap:
    def test_identity(self):
        m = AffineMap.identity(3, ("m", "n", "k"))
        assert m.evaluate([1, 2, 3]) == (1, 2, 3)
        assert m.is_permutation()

    def test_permutation(self):
        m = AffineMap.permutation([2, 0, 1])
        assert m.evaluate([10, 20, 30]) == (30, 10, 20)
        assert m.permutation_vector() == (2, 0, 1)

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            AffineMap.permutation([0, 0, 1])

    def test_constant_map(self):
        m = AffineMap.constant([4, 4, 4], 3, ("m", "n", "k"))
        assert m.evaluate([9, 9, 9]) == (4, 4, 4)

    def test_projected_permutation(self):
        m = AffineMap(3, (AffineDimExpr(0), AffineDimExpr(2)))
        assert m.is_projected_permutation()
        assert not m.is_permutation()

    def test_out_of_range_dim_rejected(self):
        with pytest.raises(ValueError):
            AffineMap(2, (AffineDimExpr(5),))

    def test_evaluate_arity_checked(self):
        m = AffineMap.identity(2)
        with pytest.raises(ValueError):
            m.evaluate([1, 2, 3])

    def test_str_with_names(self):
        m = AffineMap(3, (AffineDimExpr(0), AffineDimExpr(2)), ("m", "n", "k"))
        assert str(m) == "affine_map<(m, n, k) -> (m, k)>"

    def test_compose_permutation(self):
        base = AffineMap(3, (AffineDimExpr(0), AffineDimExpr(2)),
                         ("m", "n", "k"))
        perm = AffineMap.permutation([0, 2, 1], ("m", "n", "k"))
        composed = base.compose_permutation(perm)
        # New input space is (m, k, n): A's (m, k) is now dims (0, 1).
        assert composed.evaluate([5, 7, 9]) == (5, 7)


class TestParser:
    def test_paper_matmul_map(self):
        m = parse_affine_map("affine_map<(m, n, k) -> (m, k)>")
        assert m.num_dims == 3
        assert m.evaluate([1, 2, 3]) == (1, 3)
        assert m.dim_names == ("m", "n", "k")

    def test_paper_permutation_map(self):
        m = parse_affine_map("affine_map<(m, n, k) -> (m, k, n)>")
        assert m.permutation_vector() == (0, 2, 1)

    def test_paper_accel_dim_map(self):
        m = parse_affine_map("map<(m, n, k) -> (4, 4, 4)>")
        assert m.evaluate([60, 72, 80]) == (4, 4, 4)

    def test_conv_compound_expr(self):
        m = parse_affine_map(
            "affine_map<(n, f, oh, ow, c, fh, fw) -> "
            "(n, c, oh * 2 + fh, ow * 2 + fw)>"
        )
        assert m.evaluate([0, 0, 3, 1, 5, 2, 1]) == (0, 5, 8, 3)

    def test_precedence(self):
        m = parse_affine_map("(a, b) -> (a + b * 3)")
        assert m.evaluate([1, 2]) == (7,)

    def test_parentheses(self):
        m = parse_affine_map("(a, b) -> ((a + b) * 3)")
        assert m.evaluate([1, 2]) == (9,)

    def test_mod_and_floordiv_keywords(self):
        m = parse_affine_map("(i) -> (i mod 4, i floordiv 4)")
        assert m.evaluate([13]) == (1, 3)

    def test_negation(self):
        m = parse_affine_map("(i) -> (-i + 10)")
        assert m.evaluate([3]) == (7,)

    @pytest.mark.parametrize("bad", [
        "affine_map<(m, n -> (m)>",
        "(m, n) -> (q)",
        "(m, m) -> (m)",
        "(m) -> (m) trailing",
        "(m) -> (m ++ m)",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(AffineParseError):
            parse_affine_map(bad)

    def test_round_trip_through_str(self):
        original = parse_affine_map("affine_map<(m, n, k) -> (k, n)>")
        again = parse_affine_map(str(original))
        assert again == original


@given(
    perm=st.permutations(range(4)),
    point=st.tuples(*[st.integers(-100, 100)] * 4),
)
def test_permutation_map_is_bijective(perm, point):
    m = AffineMap.permutation(list(perm))
    image = m.evaluate(list(point))
    # Applying the inverse permutation recovers the original point.
    inverse = [0] * 4
    for result_pos, dim in enumerate(perm):
        inverse[dim] = result_pos
    recovered = tuple(image[inverse[d]] for d in range(4))
    assert recovered == point


@given(
    coeffs=st.lists(st.integers(0, 5), min_size=2, max_size=4),
    point=st.lists(st.integers(0, 50), min_size=4, max_size=4),
)
def test_parsed_linear_expr_matches_manual_evaluation(coeffs, point):
    dims = ["a", "b", "c", "d"][: len(coeffs)]
    expr = " + ".join(f"{c} * {d}" for c, d in zip(coeffs, dims))
    m = parse_affine_map(f"({', '.join(dims)}) -> ({expr})")
    expected = sum(c * p for c, p in zip(coeffs, point))
    assert m.evaluate(point[: len(coeffs)]) == (expected,)
