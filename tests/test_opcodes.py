"""Tests for the opcode_map / opcode_flow grammars (paper Figs. 7-8)."""

import pytest
from hypothesis import given, strategies as st

from repro.opcodes import (
    FlowGroup,
    FlowOpcode,
    Opcode,
    OpcodeMap,
    OpcodeSyntaxError,
    Recv,
    Send,
    SendDim,
    SendIdx,
    SendLiteral,
    parse_opcode_flow,
    parse_opcode_map,
)

PAPER_MAP = """opcode_map <
    sA = [send_literal(0x22), send(0)],
    sB = [send_literal(0x23), send(1)],
    cC = [send_literal(0xF0)],
    rC = [send_literal(0x24), recv(2)],
    sBcCrC = [send_literal(0x25), send(1), recv(2)],
    reset = [send_literal(0xFF)] >"""


class TestOpcodeMapParser:
    def test_paper_figure_6a(self):
        parsed = parse_opcode_map(PAPER_MAP)
        assert parsed.names() == ["sA", "sB", "cC", "rC", "sBcCrC", "reset"]
        assert parsed["sA"].actions == (SendLiteral(0x22), Send(0))
        assert parsed["rC"].actions == (SendLiteral(0x24), Recv(2))
        assert parsed["reset"].actions == (SendLiteral(0xFF),)

    def test_conv_figure_15a(self):
        parsed = parse_opcode_map(
            "opcode_map < sIcO = [send_literal(70), send(0)], "
            "sF = [send_literal(1), send(1)], "
            "rO = [send_literal(8), recv(2)], "
            "rst = [send_literal(32), send_dim(1, 3), "
            "send_literal(16), send_dim(0, 1)] >"
        )
        assert parsed["rst"].actions == (
            SendLiteral(32), SendDim(1, 3), SendLiteral(16), SendDim(0, 1)
        )

    def test_send_idx(self):
        parsed = parse_opcode_map("opcode_map < x = [send_idx(m)] >")
        assert parsed["x"].actions == (SendIdx("m"),)

    def test_decimal_literals(self):
        parsed = parse_opcode_map("opcode_map < x = [send_literal(70)] >")
        assert parsed["x"].actions[0].value == 70

    def test_string_keys_allowed(self):
        parsed = parse_opcode_map('opcode_map < "my op" = [send(0)] >')
        assert "my op" in parsed

    def test_without_wrapper_keyword(self):
        parsed = parse_opcode_map("a = [send(0)], b = [recv(1)]")
        assert parsed.names() == ["a", "b"]

    @pytest.mark.parametrize("bad", [
        "opcode_map < a = send(0) >",            # missing brackets
        "opcode_map < a = [send(0)",             # unterminated
        "opcode_map < a = [jump(0)] >",          # unknown action
        "opcode_map < a = [send()] >",           # missing argument
        "opcode_map < a = [send_dim(1)] >",      # send_dim needs 2 args
        "opcode_map < a = [send(0)] b = [send(1)] >",  # missing comma
        "opcode_map < a = [] >",                 # empty action list
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(OpcodeSyntaxError):
            parse_opcode_map(bad)

    def test_duplicate_names_rejected(self):
        with pytest.raises(OpcodeSyntaxError):
            parse_opcode_map("opcode_map < a = [send(0)], a = [send(1)] >")

    def test_literal_range_checked(self):
        with pytest.raises(ValueError):
            SendLiteral(2 ** 32)

    def test_round_trip_through_str(self):
        parsed = parse_opcode_map(PAPER_MAP)
        again = parse_opcode_map(str(parsed))
        assert again == parsed


class TestOpcodeQueries:
    def test_send_recv_args(self):
        opcode = Opcode("x", (SendLiteral(1), Send(0), Send(1), Recv(2)))
        assert opcode.send_args() == (0, 1)
        assert opcode.recv_args() == (2,)
        assert opcode.referenced_args() == (0, 1, 2)

    def test_sends_and_recvs_partition(self):
        opcode = Opcode("x", (SendLiteral(1), Recv(2)))
        assert len(opcode.sends) == 1
        assert len(opcode.recvs) == 1

    def test_map_lookup_errors(self):
        parsed = parse_opcode_map("opcode_map < a = [send(0)] >")
        with pytest.raises(KeyError):
            parsed["missing"]


class TestOpcodeFlowParser:
    def test_paper_a_stationary(self):
        flow = parse_opcode_flow("opcode_flow < (sA (sBcCrC)) >")
        assert flow.opcode_names() == ["sA", "sBcCrC"]
        assert flow.depth() == 2
        root = flow.root
        assert isinstance(root.items[0], FlowOpcode)
        assert isinstance(root.items[1], FlowGroup)

    def test_paper_c_stationary(self):
        flow = parse_opcode_flow("opcode_flow < ((sA sB cC) rC) >")
        assert flow.opcode_names() == ["sA", "sB", "cC", "rC"]
        root = flow.root
        assert isinstance(root.items[0], FlowGroup)
        assert isinstance(root.items[1], FlowOpcode)

    def test_paper_nothing_stationary(self):
        flow = parse_opcode_flow("opcode_flow < (sA sB cC rC) >")
        assert flow.depth() == 1

    def test_conv_flow(self):
        flow = parse_opcode_flow("(sF (sIcO) rO)")
        assert flow.opcode_names() == ["sF", "sIcO", "rO"]
        assert flow.depth() == 2

    def test_bare_ids_without_parens(self):
        flow = parse_opcode_flow("sA sB")
        assert flow.opcode_names() == ["sA", "sB"]

    def test_deep_nesting(self):
        flow = parse_opcode_flow("(a (b (c (d))))")
        assert flow.depth() == 4

    @pytest.mark.parametrize("bad", ["( a", "a )", "()", "", "(a,b)"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(OpcodeSyntaxError):
            parse_opcode_flow(bad)

    def test_validate_against_map(self):
        opcode_map = parse_opcode_map("opcode_map < sA = [send(0)] >")
        parse_opcode_flow("(sA)").validate_against(opcode_map)
        with pytest.raises(OpcodeSyntaxError):
            parse_opcode_flow("(sB)").validate_against(opcode_map)

    def test_round_trip_through_str(self):
        flow = parse_opcode_flow("((sA sB cC) rC)")
        assert parse_opcode_flow(str(flow)).root == flow.root


_names = st.sampled_from(["sA", "sB", "cC", "rC", "go", "x1"])


@st.composite
def flow_trees(draw, depth=0):
    items = draw(st.lists(
        _names if depth >= 2 else st.one_of(_names, flow_trees(depth=depth + 1)),
        min_size=1, max_size=4,
    ))
    return "(" + " ".join(items) + ")"


@given(flow_trees())
def test_flow_parser_round_trips_any_tree(text):
    flow = parse_opcode_flow(text)
    again = parse_opcode_flow(str(flow))
    assert again.root == flow.root
    assert again.depth() == flow.depth()


@given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=6))
def test_opcode_map_literal_round_trip(values):
    text = "opcode_map < op = [" + ", ".join(
        f"send_literal({v:#x})" for v in values
    ) + "] >"
    parsed = parse_opcode_map(text)
    assert [a.value for a in parsed["op"].actions] == values
    assert parse_opcode_map(str(parsed)) == parsed
