"""Tests for MemRef descriptors, copy kernels, and the DMA runtime."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerators import MatMulAccelerator
from repro.runtime import (
    AxiRuntime,
    CALL_STYLE_GENERATED,
    CALL_STYLE_MANUAL,
    CopyKinds,
    MemRefDescriptor,
)
from repro.runtime.copy import (
    stage_memref_to_region,
    unstage_region_to_memref,
    words_view,
)
from repro.soc import make_pynq_z2


class TestMemRefDescriptor:
    def test_from_numpy_shape(self, rng):
        array = rng.integers(0, 9, (3, 5)).astype(np.int32)
        desc = MemRefDescriptor.from_numpy(array, base_address=0x1000)
        assert desc.sizes == (3, 5)
        assert desc.strides == (5, 1)
        assert np.array_equal(desc.view(), array)

    def test_load_store(self, rng):
        array = np.zeros((4, 4), np.int32)
        desc = MemRefDescriptor.from_numpy(array)
        desc.store(7, (2, 3))
        assert desc.load((2, 3)) == 7
        assert array[2, 3] == 7

    def test_out_of_bounds_rejected(self):
        desc = MemRefDescriptor.from_numpy(np.zeros((2, 2), np.int32))
        with pytest.raises(IndexError):
            desc.load((2, 0))
        with pytest.raises(IndexError):
            desc.load((0, 0, 0))

    def test_subview_shares_storage(self, rng):
        array = rng.integers(0, 9, (8, 8)).astype(np.int32)
        desc = MemRefDescriptor.from_numpy(array)
        sub = desc.subview((2, 4), (3, 2))
        assert np.array_equal(sub.view(), array[2:5, 4:6])
        sub.store(-1, (0, 0))
        assert array[2, 4] == -1

    def test_nested_subview(self, rng):
        array = rng.integers(0, 9, (16, 16)).astype(np.int32)
        desc = MemRefDescriptor.from_numpy(array)
        outer = desc.subview((4, 4), (8, 8))
        inner = outer.subview((2, 2), (3, 3))
        assert np.array_equal(inner.view(), array[6:9, 6:9])

    def test_subview_bounds_checked(self):
        desc = MemRefDescriptor.from_numpy(np.zeros((4, 4), np.int32))
        with pytest.raises(IndexError):
            desc.subview((2, 2), (4, 4))

    def test_element_address_row_major(self):
        desc = MemRefDescriptor.from_numpy(
            np.zeros((4, 8), np.int32), base_address=0x1000
        )
        assert desc.element_address((0, 0)) == 0x1000
        assert desc.element_address((1, 0)) == 0x1000 + 8 * 4
        assert desc.element_address((1, 3)) == 0x1000 + 11 * 4

    def test_subview_addresses_offset(self):
        desc = MemRefDescriptor.from_numpy(
            np.zeros((8, 8), np.int32), base_address=0
        )
        sub = desc.subview((2, 4), (2, 2))
        assert sub.element_address((0, 0)) == (2 * 8 + 4) * 4

    def test_contiguity(self):
        desc = MemRefDescriptor.from_numpy(np.zeros((4, 4), np.int32))
        assert desc.is_contiguous()
        sub = desc.subview((0, 0), (2, 2))
        assert not sub.is_contiguous()
        assert sub.innermost_unit_stride()

    def test_num_bytes(self):
        desc = MemRefDescriptor.from_numpy(np.zeros((3, 3), np.int32))
        assert desc.num_bytes() == 36

    @settings(max_examples=40)
    @given(
        rows=st.integers(1, 10), cols=st.integers(1, 10),
        off_r=st.integers(0, 5), off_c=st.integers(0, 5),
        size_r=st.integers(1, 5), size_c=st.integers(1, 5),
    )
    def test_subview_view_matches_numpy_slice(self, rows, cols, off_r,
                                              off_c, size_r, size_c):
        if off_r + size_r > rows or off_c + size_c > cols:
            return
        array = np.arange(rows * cols, dtype=np.int32).reshape(rows, cols)
        desc = MemRefDescriptor.from_numpy(array)
        sub = desc.subview((off_r, off_c), (size_r, size_c))
        assert np.array_equal(
            sub.view(), array[off_r:off_r + size_r, off_c:off_c + size_c]
        )

    @settings(max_examples=40)
    @given(
        shape=st.tuples(st.integers(1, 4), st.integers(1, 4),
                        st.integers(1, 4)),
        index=st.tuples(st.integers(0, 3), st.integers(0, 3),
                        st.integers(0, 3)),
    )
    def test_linear_index_matches_numpy(self, shape, index):
        if any(i >= s for i, s in zip(index, shape)):
            return
        array = np.arange(np.prod(shape), dtype=np.int32).reshape(shape)
        desc = MemRefDescriptor.from_numpy(array)
        assert desc.load(index) == array[index]


class TestCopyKernels:
    def make_board_region(self):
        board = make_pynq_z2()
        region = board.memory.allocate(4096, "region")
        words = np.zeros(1024, dtype=np.uint32)
        return board, region, words

    @pytest.mark.parametrize("style", CopyKinds.ALL)
    def test_styles_functionally_identical(self, style, rng):
        board, region, words = self.make_board_region()
        array = rng.integers(-9, 9, (16, 16)).astype(np.int32)
        desc = MemRefDescriptor.from_numpy(
            array, board.memory.allocate(array.nbytes, "src").base
        )
        sub = desc.subview((4, 8), (4, 4))
        end = stage_memref_to_region(board, sub, words, region.base, 0, style)
        assert end == 64
        assert np.array_equal(
            words[:16].view(np.int32).reshape(4, 4), array[4:8, 8:12]
        )

    def test_generic_costs_exceed_specialized(self, rng):
        results = {}
        for style in (CopyKinds.GENERIC, CopyKinds.SPECIALIZED):
            board, region, words = self.make_board_region()
            array = rng.integers(-9, 9, (32, 32)).astype(np.int32)
            desc = MemRefDescriptor.from_numpy(
                array, board.memory.allocate(array.nbytes, "src").base
            )
            sub = desc.subview((0, 0), (16, 16))
            stage_memref_to_region(board, sub, words, region.base, 0, style)
            results[style] = board.counters
        generic = results[CopyKinds.GENERIC]
        fast = results[CopyKinds.SPECIALIZED]
        assert generic.cache_references > fast.cache_references
        assert generic.branch_instructions > fast.branch_instructions
        assert generic.cpu_cycles > fast.cpu_cycles

    def test_manual_costs_between_styles(self, rng):
        results = {}
        for style in CopyKinds.ALL:
            board, region, words = self.make_board_region()
            array = rng.integers(-9, 9, (32, 32)).astype(np.int32)
            desc = MemRefDescriptor.from_numpy(
                array, board.memory.allocate(array.nbytes, "src").base
            )
            sub = desc.subview((0, 0), (16, 16))
            stage_memref_to_region(board, sub, words, region.base, 0, style)
            results[style] = board.counters.cpu_cycles
        assert results[CopyKinds.SPECIALIZED] < results[CopyKinds.MANUAL]
        assert results[CopyKinds.MANUAL] < results[CopyKinds.GENERIC]

    def test_specialized_fast_path_needs_unit_stride(self, rng):
        # A column slice has non-unit innermost stride: the specialized
        # style must fall back to element-wise costs (same as generic).
        array = rng.integers(-9, 9, (16, 16)).astype(np.int32)

        def run(style):
            board, region, words = self.make_board_region()
            desc = MemRefDescriptor.from_numpy(
                array, board.memory.allocate(array.nbytes, "src").base
            )
            column = MemRefDescriptor(
                desc.allocated, 0, (16, 1, 16), (1, 1, 16),
                desc.base_address,
            )
            stage_memref_to_region(board, column, words, region.base, 0,
                                   style)
            return board.counters.cache_references

        assert run(CopyKinds.SPECIALIZED) == run(CopyKinds.GENERIC)

    def test_overflow_detected(self, rng):
        board, region, words = self.make_board_region()
        array = rng.integers(-9, 9, (64, 64)).astype(np.int32)
        desc = MemRefDescriptor.from_numpy(
            array, board.memory.allocate(array.nbytes, "src").base
        )
        with pytest.raises(ValueError):
            stage_memref_to_region(board, desc, words, region.base, 0,
                                   CopyKinds.SPECIALIZED)

    def test_words_view_row_major(self, rng):
        array = rng.integers(-9, 9, (3, 4)).astype(np.int32)
        desc = MemRefDescriptor.from_numpy(array)
        assert np.array_equal(
            words_view(desc).view(np.int32), array.reshape(-1)
        )


class TestWideElementStaging:
    """The DMA staging path must honour element sizes, not assume 4B."""

    def make_board_region(self):
        board = make_pynq_z2()
        region = board.memory.allocate(4096, "region")
        words = np.zeros(1024, dtype=np.uint32)
        return board, region, words

    @pytest.mark.parametrize("dtype", (np.int64, np.float64))
    def test_wide_round_trip(self, dtype, rng):
        board, region, words = self.make_board_region()
        array = rng.integers(-9, 9, (4, 4)).astype(dtype)
        desc = MemRefDescriptor.from_numpy(
            array, board.memory.allocate(array.nbytes, "src").base
        )
        end = stage_memref_to_region(board, desc, words, region.base, 0,
                                     CopyKinds.SPECIALIZED)
        assert end == array.nbytes  # two words per element
        out = np.zeros((4, 4), dtype)
        out_desc = MemRefDescriptor.from_numpy(
            out, board.memory.allocate(out.nbytes, "dst").base
        )
        unstage_region_to_memref(board, out_desc, words, region.base, 0,
                                 CopyKinds.SPECIALIZED, accumulate=False)
        assert np.array_equal(out, array)

    def test_wide_unstage_at_odd_word_offset(self, rng):
        board, region, words = self.make_board_region()
        array = rng.integers(-9, 9, (2, 3)).astype(np.int64)
        words[1:1 + array.size * 2] = np.ascontiguousarray(
            array.reshape(-1)
        ).view(np.uint32)
        out = np.zeros((2, 3), np.int64)
        desc = MemRefDescriptor.from_numpy(
            out, board.memory.allocate(out.nbytes, "dst").base
        )
        unstage_region_to_memref(board, desc, words, region.base, 4,
                                 CopyKinds.GENERIC, accumulate=False)
        assert np.array_equal(out, array)

    def test_sub_word_elements_rejected(self):
        board, region, words = self.make_board_region()
        array = np.zeros((4, 4), np.int16)
        desc = MemRefDescriptor.from_numpy(
            array, board.memory.allocate(array.nbytes, "src").base
        )
        with pytest.raises(ValueError, match="element size"):
            stage_memref_to_region(board, desc, words, region.base, 0,
                                   CopyKinds.GENERIC)
        with pytest.raises(ValueError, match="element size"):
            unstage_region_to_memref(board, desc, words, region.base, 0,
                                     CopyKinds.GENERIC, accumulate=False)


class TestAxiRuntime:
    def make(self, **kwargs):
        board = make_pynq_z2()
        board.attach_accelerator(MatMulAccelerator(4, version=3))
        rt = AxiRuntime(board, **kwargs)
        rt.dma_init(0, 0, 0x10000, 0, 0x10000)
        return board, rt

    def test_transfers_require_init(self):
        board = make_pynq_z2()
        rt = AxiRuntime(board)
        with pytest.raises(RuntimeError):
            rt.send_literal(0xFF, 0)

    def test_offset_chaining(self):
        _, rt = self.make()
        offset = rt.send_literal(0x22, 0)
        assert offset == 4
        offset = rt.send_idx(17, offset)
        assert offset == 8

    def test_flush_resets_offset_and_counts_dma(self, rng):
        board, rt = self.make()
        offset = rt.send_literal(0xFF, 0)
        assert rt.flush_send(offset) == 0
        assert board.counters.dma_transactions == 1
        assert board.counters.dma_bytes_to_accel == 4

    def test_flush_empty_is_noop(self):
        board, rt = self.make()
        assert rt.flush_send(0) == 0
        assert board.counters.dma_transactions == 0

    def test_full_offload_round_trip(self, rng):
        board, rt = self.make()
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        c = np.ones((4, 4), np.int32)
        da, db, dc = (rt.make_memref(x, n) for x, n in
                      ((a, "A"), (b, "B"), (c, "C")))
        offset = rt.send_literal(0x22, 0)
        offset = rt.send_memref(da, offset)
        offset = rt.send_literal(0x23, offset)
        offset = rt.send_memref(db, offset)
        offset = rt.send_literal(0xF0, offset)
        offset = rt.send_literal(0x24, offset)
        rt.flush_send(offset)
        rt.recv_memref(dc, 0, accumulate=True)
        assert np.array_equal(c, a @ b + 1)

    def test_recv_store_mode_overwrites(self, rng):
        board, rt = self.make()
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        c = np.ones((4, 4), np.int32)
        da, db, dc = (rt.make_memref(x, n) for x, n in
                      ((a, "A"), (b, "B"), (c, "C")))
        offset = rt.send_literal(0x22, 0)
        offset = rt.send_memref(da, offset)
        offset = rt.send_literal(0x23, offset)
        offset = rt.send_memref(db, offset)
        offset = rt.send_literal(0xF0, offset)
        offset = rt.send_literal(0x24, offset)
        rt.flush_send(offset)
        rt.recv_memref(dc, 0, accumulate=False)
        assert np.array_equal(c, a @ b)

    def test_send_dim_stages_extent(self):
        board, rt = self.make()
        desc = rt.make_memref(np.zeros((3, 7), np.int32), "X")
        rt.send_dim(desc, 1, 0)
        assert rt.dma.input_words[0] == 7

    def test_manual_call_style_costs_more(self):
        costs = {}
        for style in (CALL_STYLE_GENERATED, CALL_STYLE_MANUAL):
            board, rt = self.make(call_style=style)
            snapshot = board.snapshot()
            rt.send_literal(0xFF, 0)
            costs[style] = board.measure_since(snapshot).cpu_cycles
        assert costs[CALL_STYLE_MANUAL] > costs[CALL_STYLE_GENERATED]

    def test_manual_default_copy_style(self):
        board = make_pynq_z2()
        rt = AxiRuntime(board, call_style=CALL_STYLE_MANUAL)
        assert rt.copy_style == CopyKinds.MANUAL

    def test_unspecialized_flag(self):
        board = make_pynq_z2()
        rt = AxiRuntime(board, specialized_copies=False)
        assert rt.copy_style == CopyKinds.GENERIC

    def test_stall_waits_for_accelerator(self, rng):
        board, rt = self.make()
        # Large compute scheduled: recv must block until it finishes.
        board.schedule_accel_cycles(1e6)
        c = np.zeros((4, 4), np.int32)
        dc = rt.make_memref(c, "C")
        offset = rt.send_literal(0xF0, 0)
        offset = rt.send_literal(0x24, offset)
        rt.flush_send(offset)
        rt.recv_memref(dc, 0)
        assert board.counters.stall_cycles > 0
        assert board.clock >= 1e6 / board.timing.accel_freq_hz
