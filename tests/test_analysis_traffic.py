"""The static traffic analyzer must match the simulation exactly."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import estimate_traffic
from repro.accelerators import make_conv_system, make_matmul_system
from repro.compiler import AXI4MLIRCompiler
from repro.dialects import linalg
from repro.heuristics import transfer_cost_model
from repro.soc import make_pynq_z2
from repro.transforms.annotate import PREFIX


def compile_and_measure_matmul(version, size, flow, m, n, k):
    hw, info = make_matmul_system(version, size, flow=flow)
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    compiler = AXI4MLIRCompiler(info, enable_cpu_tiling=False)
    kernel = compiler.compile_matmul(m, n, k)
    rng = np.random.default_rng(0)
    a = rng.integers(-5, 5, (m, k)).astype(np.int32)
    b = rng.integers(-5, 5, (k, n)).astype(np.int32)
    c = np.zeros((m, n), np.int32)
    counters = kernel.run(board, a, b, c)
    assert np.array_equal(c, a @ b)
    estimate = estimate_traffic(
        kernel.plan, info.opcode_map, linalg.matmul_maps()
    )
    return counters, estimate


CONFIGS = [
    (1, 4, "Ns", 16, 16, 16),
    (2, 8, "As", 32, 16, 24),
    (2, 8, "Bs", 16, 32, 16),
    (3, 8, "Ns", 32, 32, 32),
    (3, 8, "Cs", 32, 16, 32),
    (3, 16, "As", 32, 48, 64),
]


class TestMatmulTraffic:
    @pytest.mark.parametrize("version,size,flow,m,n,k", CONFIGS)
    def test_prediction_matches_simulation_exactly(self, version, size,
                                                   flow, m, n, k):
        counters, estimate = compile_and_measure_matmul(
            version, size, flow, m, n, k
        )
        assert estimate.bytes_to_accel == counters.dma_bytes_to_accel
        assert estimate.bytes_from_accel == counters.dma_bytes_from_accel
        assert estimate.dma_transactions == counters.dma_transactions

    def test_matches_heuristic_closed_form(self):
        # The tile-payload part of the estimate equals the Sec. IV-C
        # transfer model (literals/instruction words excluded there).
        m = n = k = 64
        size = 8
        _, estimate = compile_and_measure_matmul(3, size, "Cs", m, n, k)
        words, _ = transfer_cost_model(m, n, k, size, size, size, "Cs")
        literal_words = (
            estimate.executions["sA"] + estimate.executions["sB"]
            + estimate.executions["cC"] + estimate.executions["rC"]
            + estimate.executions["reset"]
        )
        payload = estimate.bytes_to_accel + estimate.bytes_from_accel \
            - 4 * literal_words
        assert payload == words * 4

    def test_execution_counts_follow_stationarity(self):
        _, estimate = compile_and_measure_matmul(3, 8, "As", 32, 32, 32)
        trips = 32 // 8
        assert estimate.executions["sA"] == trips * trips
        assert estimate.executions["sB"] == trips ** 3
        assert estimate.executions["rC"] == trips ** 3

    def test_cpu_tiled_plans_rejected(self):
        hw, info = make_matmul_system(3, 16, flow="Ns")
        compiler = AXI4MLIRCompiler(info, enable_cpu_tiling=True)
        kernel = compiler.compile_matmul(512, 512, 512)
        with pytest.raises(ValueError):
            estimate_traffic(kernel.plan, info.opcode_map,
                             linalg.matmul_maps())

    def test_rejection_is_structured(self):
        from repro.analysis import TrafficUnsupported

        hw, info = make_matmul_system(3, 16, flow="Ns")
        compiler = AXI4MLIRCompiler(info, enable_cpu_tiling=True)
        kernel = compiler.compile_matmul(512, 512, 512)
        with pytest.raises(TrafficUnsupported) as excinfo:
            estimate_traffic(kernel.plan, info.opcode_map,
                             linalg.matmul_maps())
        # Callers (the sweep pruner) branch on the offending option
        # rather than parsing the message.
        assert excinfo.value.option == "enable_cpu_tiling"
        assert excinfo.value.detail
        assert isinstance(excinfo.value, ValueError)


class TestConvTraffic:
    def test_prediction_matches_simulation_exactly(self):
        layer = dict(batch=1, in_ch=8, in_hw=6, out_ch=4, f_hw=3, stride=1)
        hw, info = make_conv_system(layer["in_ch"], layer["f_hw"])
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        compiler = AXI4MLIRCompiler(info, enable_cpu_tiling=False)
        kernel = compiler.compile_conv(**layer)
        rng = np.random.default_rng(1)
        image = rng.integers(-3, 3, (1, 8, 6, 6)).astype(np.int32)
        weights = rng.integers(-3, 3, (4, 8, 3, 3)).astype(np.int32)
        out = np.zeros((1, 4, 4, 4), np.int32)
        counters = kernel.run(board, image, weights, out)
        estimate = estimate_traffic(
            kernel.plan, info.opcode_map,
            linalg.conv_2d_nchw_fchw_maps(stride=1),
        )
        assert estimate.bytes_to_accel == counters.dma_bytes_to_accel
        assert estimate.bytes_from_accel == counters.dma_bytes_from_accel
        assert estimate.dma_transactions == counters.dma_transactions
        # One filter send per output channel, one window per pixel.
        assert estimate.executions["sF"] == 4
        assert estimate.executions["sIcO"] == 4 * 4 * 4
        assert estimate.executions["rO"] == 4


@settings(max_examples=10, deadline=None)
@given(
    tiles=st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
    config=st.sampled_from([(1, "Ns"), (2, "As"), (3, "Cs"), (3, "Bs")]),
)
def test_property_traffic_prediction_is_exact(tiles, config):
    version, flow = config
    size = 4
    m, n, k = (size * t for t in tiles)
    counters, estimate = compile_and_measure_matmul(version, size, flow,
                                                    m, n, k)
    assert estimate.bytes_to_accel == counters.dma_bytes_to_accel
    assert estimate.bytes_from_accel == counters.dma_bytes_from_accel
    assert estimate.dma_transactions == counters.dma_transactions
