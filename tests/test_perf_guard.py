"""Unit tests for the CI perf-regression guard (benchmarks/perf_guard.py)."""

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "perf_guard",
    Path(__file__).resolve().parent.parent / "benchmarks" / "perf_guard.py",
)
perf_guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_guard)


def _record(total, harnesses=None, stages=None):
    return {
        "benchmarks_total_s": total,
        "per_harness_s": harnesses or {},
        "per_stage_s": stages or {},
    }


class TestTotalsAndHarnesses:
    def test_identical_records_pass(self):
        baseline = _record(10.0, {"a": 6.0, "b": 3.0, "c": 1.0})
        assert perf_guard.compare(baseline, baseline, 1.25) == []

    def test_total_regression_fails(self):
        baseline = _record(10.0)
        fresh = _record(14.0)
        failures = perf_guard.compare(baseline, fresh, 1.25)
        assert any("total" in f for f in failures)

    def test_slowest_harness_regression_fails(self):
        baseline = _record(10.0, {"big": 6.0, "small": 0.1})
        fresh = _record(10.0, {"big": 9.0, "small": 0.1})
        failures = perf_guard.compare(baseline, fresh, 1.25)
        assert any("big" in f for f in failures)


class TestStageGuard:
    def test_stage_regression_fails(self):
        base = {"replay_s": 6.0, "compile_s": 0.4}
        fresh = {"replay_s": 9.0, "compile_s": 0.4}
        failures = perf_guard.compare_stages(base, fresh, 1.25)
        assert any("replay_s" in f for f in failures)

    def test_stage_within_threshold_passes(self):
        base = {"replay_s": 6.0, "trace_synth_s": 1.0}
        fresh = {"replay_s": 6.5, "trace_synth_s": 1.1}
        assert perf_guard.compare_stages(base, fresh, 1.25) == []

    def test_near_zero_stage_growing_fails(self):
        """trace_record_s creeping back up must trip the guard even
        though its baseline ratio is meaningless."""
        base = {"trace_record_s": 0.0}
        fresh = {"trace_record_s": 2.5}
        failures = perf_guard.compare_stages(base, fresh, 1.25)
        assert any("trace_record_s" in f for f in failures)

    def test_near_zero_stage_staying_small_passes(self):
        base = {"trace_record_s": 0.0}
        fresh = {"trace_record_s": 0.05}
        assert perf_guard.compare_stages(base, fresh, 1.25) == []

    def test_missing_guarded_stage_fails(self):
        base = {"replay_s": 6.0}
        failures = perf_guard.compare_stages(base, {}, 1.25)
        assert any("missing" in f for f in failures)

    def test_new_fresh_stage_is_ignored(self):
        base = {"replay_s": 6.0}
        fresh = {"replay_s": 6.0, "brand_new_s": 99.0}
        assert perf_guard.compare_stages(base, fresh, 1.25) == []

    def test_metrics_plan_stages_are_guarded(self):
        """The metrics-plane stages ride the same generic stage guard."""
        base = {"metrics_plan_build_s": 2.0, "metrics_plan_apply_s": 0.05}
        fresh = {"metrics_plan_build_s": 3.0, "metrics_plan_apply_s": 0.05}
        failures = perf_guard.compare_stages(base, fresh, 1.25)
        assert any("metrics_plan_build_s" in f for f in failures)

    def test_metrics_plan_apply_floor_crossing_fails(self):
        """A near-zero apply stage blowing up (plan path silently lost)
        must trip the floor-crossing rule."""
        base = {"metrics_plan_apply_s": 0.05}
        fresh = {"metrics_plan_apply_s": 1.5}
        failures = perf_guard.compare_stages(base, fresh, 1.25)
        assert any("metrics_plan_apply_s" in f for f in failures)
