"""Chaos suite: every degradation-ladder rung under injected faults.

The acceptance bar is bit-identity: for every single injected fault,
benchmark configurations must produce exactly the PerfCounters and
output bytes of the clean run — a fault may only ever force an
already-equivalent fallback path, never change results.
"""

import os

import numpy as np
import pytest

from repro import faults
from repro.accelerators import make_conv_system, make_matmul_system
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.execution import diagnostics
from repro.execution.metrics import METRICS_PLAN_COUNTERS
from repro.execution.trace import TRACE_COUNTERS
from repro.soc import make_pynq_z2
from repro.store import STORE_COUNTERS, reset_store_counters


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    """Each test controls its own fault spec, even under CI's chaos leg."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    faults.reset_faults()
    reset_store_counters()
    yield
    faults.reset_faults()


class TestGrammar:
    def test_single_clause_defaults_to_always(self):
        clauses = faults.parse_faults("store.read:io")
        assert clauses["store.read"].kind == "io"
        assert clauses["store.read"].probability == 1.0

    def test_full_spec(self):
        spec = "store.read:io@0.3;native.compile:fail;lock:timeout@0.1"
        clauses = faults.parse_faults(spec)
        assert set(clauses) == {"store.read", "native.compile",
                                "store.lock"}
        assert clauses["store.lock"].kind == "timeout"
        assert clauses["store.lock"].probability == 0.1

    def test_lock_alias(self):
        assert "store.lock" in faults.parse_faults("lock:timeout")

    @pytest.mark.parametrize("bad", [
        "unknown.site:io",            # unknown site
        "store.read:timeout",         # kind not supported by site
        "store.read",                 # missing kind
        "store.read:io@1.5",          # probability out of range
        "store.read:io@x",            # unparsable probability
        "store.read:io;store.read:corrupt",  # duplicate site
    ])
    def test_bad_specs_fail_loudly(self, bad):
        with pytest.raises(faults.FaultConfigError):
            faults.parse_faults(bad)

    def test_inactive_without_env(self):
        assert not faults.faults_active()
        assert faults.fires("store.read") is None

    def test_env_changes_take_effect_immediately(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.read:io")
        assert faults.fires("store.read") == "io"
        monkeypatch.setenv("REPRO_FAULTS", "")
        assert faults.fires("store.read") is None


class TestDocstringContract:
    """The module docstring is executable documentation: every fault
    clause it shows must parse against the real site registry, so the
    grammar example can never drift from the code again (it once
    showed ``lock:timeout@0.1`` against an example using canonical
    site names)."""

    CLAUSE_RE = r"\b([a-z]+(?:\.[a-z]+)+:[a-z]+(?:@[0-9.]+)?)\b"

    def _docstring_clauses(self):
        import re
        return re.findall(self.CLAUSE_RE, faults.__doc__)

    def test_every_docstring_clause_parses(self):
        clauses = self._docstring_clauses()
        assert clauses, "docstring lost its grammar examples"
        for clause in clauses:
            parsed = faults.parse_faults(clause)  # must not raise
            assert len(parsed) == 1

    def test_grammar_example_covers_service_sites(self):
        sites = {clause.split(":")[0]
                 for clause in self._docstring_clauses()}
        assert "store.lock" in sites  # the canonical name, not 'lock'
        assert "service.worker" in sites

    def test_every_registered_kind_parses(self):
        for site, kinds in faults.SITES.items():
            for kind in kinds:
                parsed = faults.parse_faults(f"{site}:{kind}@0.5")
                assert parsed[site].kind == kind


class TestMalformedSeed:
    """REPRO_FAULTS_SEED follows the one-shot-warning knob contract:
    garbage warns once and falls back to the default seed instead of
    erroring (or silently changing the schedule)."""

    def _fresh_warn_memo(self, monkeypatch):
        from repro import envutil
        monkeypatch.setattr(envutil, "_warned_env_values", set())

    def test_malformed_seed_warns_once_and_uses_default(
            self, monkeypatch):
        self._fresh_warn_memo(monkeypatch)
        monkeypatch.setenv("REPRO_FAULTS", "replay:fail@0.3")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "banana")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_FAULTS_SEED='banana'"):
            schedule = [faults.fires("replay") for _ in range(64)]
        # Same schedule as the default seed 0.
        faults.reset_faults()
        monkeypatch.setenv("REPRO_FAULTS_SEED", "0")
        assert [faults.fires("replay") for _ in range(64)] == schedule

    def test_warning_is_one_shot_per_value(self, monkeypatch):
        import warnings as warnings_mod

        self._fresh_warn_memo(monkeypatch)
        monkeypatch.setenv("REPRO_FAULTS", "replay:fail")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "3.5")
        with pytest.warns(RuntimeWarning):
            faults.fires("replay")
        faults.reset_faults()  # force clause re-parse
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert faults.fires("replay") == "fail"


class TestDeterminism:
    def _schedule(self, seed, draws=64):
        faults.reset_faults()
        os.environ["REPRO_FAULTS"] = "replay:fail@0.3"
        os.environ["REPRO_FAULTS_SEED"] = str(seed)
        try:
            return [faults.fires("replay") for _ in range(draws)]
        finally:
            del os.environ["REPRO_FAULTS"]
            del os.environ["REPRO_FAULTS_SEED"]

    def test_same_seed_same_schedule(self):
        assert self._schedule(7) == self._schedule(7)

    def test_different_seed_different_schedule(self):
        assert self._schedule(7) != self._schedule(8)

    def test_probability_thins_the_schedule(self):
        fired = [k for k in self._schedule(7, draws=200) if k]
        assert 20 < len(fired) < 120  # ~0.3 of 200

    def test_sites_draw_independent_streams(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS",
                           "replay:fail@0.5;synth:fail@0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "3")
        interleaved = [faults.fires("replay") for _ in range(32)]
        faults.reset_faults()
        for _ in range(32):
            faults.fires("synth")  # extra draws on the *other* site
        alone = [faults.fires("replay") for _ in range(32)]
        assert interleaved == alone

    def test_counters_track_fired_sites(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "synth:fail")
        for _ in range(3):
            assert faults.fires("synth") == "fail"
        assert faults.fault_counters()["synth"] == 3


class TestKeyedDraws:
    """keyed_fires: per-key verdicts independent of consultation order.

    The sweep engine uses these for per-point crash/poison injection —
    a point's verdict must be a pure function of (seed, site, key) so
    a resumed sweep reproduces the interrupted sweep's verdicts no
    matter which process asks, how many times, or in what order.
    """

    def test_verdict_is_order_and_repeat_independent(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tuning.worker:crash@0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
        keys = [f"point{i}" for i in range(32)]
        forward = [faults.keyed_fires("tuning.worker", k) for k in keys]
        backward = [faults.keyed_fires("tuning.worker", k)
                    for k in reversed(keys)]
        assert forward == list(reversed(backward))
        # Unlike fires(), repeat consultation does not advance a stream.
        assert forward == [faults.keyed_fires("tuning.worker", k)
                           for k in keys]

    def test_verdict_depends_on_seed_and_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tuning.point:poison@0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "1")
        keys = [f"point{i}" for i in range(64)]
        one = [faults.keyed_fires("tuning.point", k) for k in keys]
        monkeypatch.setenv("REPRO_FAULTS_SEED", "2")
        faults.reset_faults()
        two = [faults.keyed_fires("tuning.point", k) for k in keys]
        assert one != two
        fired = [k for k in one if k]
        assert 0 < len(fired) < len(keys)  # ~0.5, not all-or-nothing

    def test_inactive_site_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.reset_faults()
        assert faults.keyed_fires("tuning.worker", "point0") is None

    def test_fired_verdicts_are_counted(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tuning.point:poison")
        faults.reset_faults()
        assert faults.keyed_fires("tuning.point", "a") == "poison"
        assert faults.keyed_fires("tuning.point", "b") == "poison"
        assert faults.fault_counters()["tuning.point"] == 2


# -- bit-identity under every single fault ----------------------------------

CONFIGS = [
    ("matmul", dict(version=3, size=8, flow="Cs"), (32, 32, 32)),
    ("matmul", dict(version=2, size=4, flow="As"), (16, 16, 16)),
    ("conv", dict(ic=4, fhw=3), (1, 4, 8, 4, 3)),
]

FAULT_SPECS = [
    "store.read:io",
    "store.read:corrupt",
    "store.write:io",
    "store.lock:timeout",
    "native.compile:fail",
    "metrics.plan:fail",
    "replay:fail",
    "synth:fail",
]


def _run_config(kind, params, shape, store_dir):
    """Compile + run one benchmark config twice, then once via a disk
    reload; returns everything that must be bit-identical."""
    if kind == "matmul":
        hw, info = make_matmul_system(**params)
        m, n, k = shape
        rng = np.random.default_rng(77)
        arrays = [rng.integers(-5, 5, (m, k)).astype(np.int32),
                  rng.integers(-5, 5, (k, n)).astype(np.int32)]
        out_shape = (m, n)
        compile_fn = lambda c: c.compile_matmul(m, n, k)  # noqa: E731
    else:
        hw, info = make_conv_system(**params)
        batch, in_ch, in_hw, out_ch, f_hw = shape
        out_hw = in_hw - f_hw + 1
        rng = np.random.default_rng(78)
        arrays = [
            rng.integers(-4, 4, (batch, in_ch, in_hw, in_hw))
            .astype(np.int32),
            rng.integers(-4, 4, (out_ch, in_ch, f_hw, f_hw))
            .astype(np.int32),
        ]
        out_shape = (batch, out_ch, out_hw, out_hw)
        compile_fn = lambda c: c.compile_conv(*shape)  # noqa: E731

    results = []

    def run(kernel):
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        out = np.zeros(out_shape, np.int32)
        counters = kernel.run(board, *arrays, out)
        results.append((counters.as_dict(), out.tobytes()))

    cache = KernelCache(disk_dir=store_dir)
    kernel = compile_fn(AXI4MLIRCompiler(info, kernel_cache=cache))
    run(kernel)
    run(kernel)  # warm kernel: trace + metrics-plan paths
    reader = KernelCache(disk_dir=store_dir)
    run(compile_fn(AXI4MLIRCompiler(info, kernel_cache=reader)))
    return results


@pytest.fixture(scope="module")
def clean_baselines(tmp_path_factory):
    """Fault-free reference results, computed once per module.

    Module-scoped, so it sets up before the function-scoped autouse
    env scrub — ambient faults (CI's chaos leg) are removed by hand.
    """
    ambient = {name: os.environ.pop(name, None)
               for name in ("REPRO_FAULTS", "REPRO_FAULTS_SEED")}
    faults.reset_faults()
    try:
        baselines = {}
        for index, (kind, params, shape) in enumerate(CONFIGS):
            store = tmp_path_factory.mktemp(f"clean-store-{index}")
            baselines[index] = _run_config(kind, params, shape, str(store))
        return baselines
    finally:
        for name, value in ambient.items():
            if value is not None:
                os.environ[name] = value


class TestSingleFaultBitIdentity:
    @pytest.mark.parametrize("spec", FAULT_SPECS)
    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_fault_preserves_results(self, spec, config_index,
                                     clean_baselines, tmp_path,
                                     monkeypatch):
        kind, params, shape = CONFIGS[config_index]
        if spec == "native.compile:fail":
            # The native probe is memoized process-wide; reset it so
            # the injected fault actually gets a shot at this call.
            from repro.soc import _native
            monkeypatch.setattr(_native, "_tried", False)
            monkeypatch.setattr(_native, "_lib", None)
            monkeypatch.setattr(_native, "_status", "untried")
        monkeypatch.setenv("REPRO_FAULTS", spec)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "11")
        faults.reset_faults()
        with pytest.warns(RuntimeWarning) \
                if spec == "native.compile:fail" else _nullcontext():
            results = _run_config(kind, params, shape, str(tmp_path))
        assert results == clean_baselines[config_index]
        if spec not in ("store.lock:timeout",):
            # Probability 1.0: the fault must actually have fired.
            site = spec.split(":")[0]
            assert faults.fault_counters().get(site, 0) > 0


def _nullcontext():
    import contextlib
    return contextlib.nullcontext()


# -- the ladder's bookkeeping under faults ----------------------------------

class TestDegradationCounters:
    def _compile_and_run(self, store_dir=None, shape=(16, 16, 16)):
        hw, info = make_matmul_system(3, 8, flow="Ns")
        cache = KernelCache(disk_dir=store_dir)
        kernel = AXI4MLIRCompiler(info, kernel_cache=cache) \
            .compile_matmul(*shape)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        rng = np.random.default_rng(5)
        m, n, k = shape
        a = rng.integers(-5, 5, (m, k)).astype(np.int32)
        b = rng.integers(-5, 5, (k, n)).astype(np.int32)
        c = np.zeros((m, n), np.int32)
        kernel.run(board, a, b, c)
        return cache

    def test_synth_fault_falls_back_to_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "synth:fail")
        before = dict(TRACE_COUNTERS)
        self._compile_and_run()
        assert TRACE_COUNTERS["synth_fallback"] \
            == before["synth_fallback"] + 1
        assert TRACE_COUNTERS["recorded"] == before["recorded"] + 1

    def test_metrics_fault_counts_as_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "metrics.plan:fail")
        before = dict(METRICS_PLAN_COUNTERS)
        self._compile_and_run()
        assert METRICS_PLAN_COUNTERS["metrics_plan_fallback"] \
            > before["metrics_plan_fallback"]

    def test_store_read_io_counts_io_not_miss(self, tmp_path,
                                              monkeypatch):
        store = str(tmp_path / "s")
        self._compile_and_run(store_dir=store)  # publish cleanly
        monkeypatch.setenv("REPRO_FAULTS", "store.read:io")
        cache = self._compile_and_run(store_dir=store)
        assert STORE_COUNTERS["store_io_errors"] > 0
        assert cache.disk_hits == 0 and cache.disk_corrupt == 0

    def test_store_corrupt_fault_quarantines_then_recovers(
            self, tmp_path, monkeypatch):
        store = tmp_path / "s"
        self._compile_and_run(store_dir=str(store))
        monkeypatch.setenv("REPRO_FAULTS", "store.read:corrupt")
        cache = self._compile_and_run(store_dir=str(store))
        assert cache.disk_corrupt == 1
        assert list((store / "corrupt").iterdir())
        # Fault lifted: the republished entry loads again.
        monkeypatch.delenv("REPRO_FAULTS")
        recovered = self._compile_and_run(store_dir=str(store))
        assert recovered.disk_hits == 1

    def test_store_write_fault_leaves_no_partial_entry(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.write:io")
        store = tmp_path / "s"
        self._compile_and_run(store_dir=str(store))
        assert STORE_COUNTERS["store_write_failures"] > 0
        files = [p for p in store.rglob("*") if p.is_file()
                 and not p.name.endswith(".lock")]
        assert files == []  # nothing published, nothing leaked

    def test_lock_timeout_fault_still_compiles(self, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "store.lock:timeout")
        cache = self._compile_and_run(store_dir=str(tmp_path / "s"))
        assert STORE_COUNTERS["store_lock_timeouts"] > 0
        assert cache.misses == 1  # compiled despite no coordination


class TestNativeFaultMemo:
    def test_one_shot_warning_and_no_retry(self, monkeypatch):
        from repro.soc import _native

        monkeypatch.setattr(_native, "_tried", False)
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_status", "untried")
        monkeypatch.setenv("REPRO_FAULTS", "native.compile:fail")
        faults.reset_faults()
        with pytest.warns(RuntimeWarning, match="fault-injected"):
            assert _native.native_lib() is None
        fired = faults.fault_counters()["native.compile"]
        # Memoized: later calls neither warn nor re-probe the fault.
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert _native.native_lib() is None
        assert faults.fault_counters()["native.compile"] == fired
        assert _native.native_status() == {
            "available": False, "status": "fault-injected",
        }

    def test_no_native_env_is_silent(self, monkeypatch):
        from repro.soc import _native

        monkeypatch.setattr(_native, "_tried", False)
        monkeypatch.setattr(_native, "_lib", None)
        monkeypatch.setattr(_native, "_status", "untried")
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        import warnings as warnings_mod
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            assert _native.native_lib() is None
        assert _native.native_status()["status"] == "disabled"


class TestDiagnostics:
    def test_diagnostics_has_robustness_sections(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "synth:fail")
        faults.fires("synth")
        report = diagnostics()
        assert set(report) >= {"stage_timings", "trace_sources",
                               "metrics_plan", "store", "faults",
                               "native"}
        assert report["faults"].get("synth", 0) >= 1
        assert set(report["store"]) == set(STORE_COUNTERS)
        assert "status" in report["native"]


class TestForkSafety:
    def test_child_gets_fresh_fault_lock(self, monkeypatch):
        """A child forked while another thread holds ``faults._lock``
        (exactly what a service worker-restart fork can hit) must get a
        fresh lock instead of deadlocking on its first ``fires()``."""
        import multiprocessing
        import threading

        monkeypatch.setenv("REPRO_FAULTS", "synth:fail@0.5")
        faults.reset_faults()
        faults.fires("synth")  # warm the memo so _lock is exercised

        release = threading.Event()

        def holder():
            with faults._lock:
                release.wait(timeout=30)

        thread = threading.Thread(target=holder, daemon=True)
        thread.start()
        while not faults._lock.locked():
            pass

        def child(queue):
            # Would hang forever on an inherited held lock.
            queue.put(faults.fires("synth") in (None, "fail"))

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        process = context.Process(target=child, args=(queue,))
        process.start()
        ok = queue.get(timeout=30)
        process.join(timeout=30)
        release.set()
        thread.join(timeout=5)
        assert ok
        assert process.exitcode == 0
