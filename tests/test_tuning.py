"""The autotuning sweep engine: space, journal, driver, reports.

The acceptance bar is the resume property: a sweep interrupted at any
instant — drained, killed, or limping through injected journal/worker
faults — must resume from its journal, serve completed points without
recomputing them, and produce a final best-config report bit-identical
to an uninterrupted run's.
"""

import json
import os
import warnings

import pytest

from repro import faults
from repro.retry import BackoffSchedule, retryable
from repro.tuning import (
    JournalMismatch,
    SweepDriver,
    SweepJournal,
    SweepSpace,
    build_report,
    render_report,
    smoke_space,
    tuning_counters,
)
from repro.tuning.counters import reset_tuning_counters
from repro.tuning.driver import (
    TUNING_DEADLINE_ENV,
    TUNING_WORKERS_ENV,
    tuning_deadline_s,
    tuning_workers,
)
from repro.tuning.space import all_permutations, group_floors

SMALL = smoke_space(shapes=((8, 8, 8),), versions=(1, 2))


@pytest.fixture(autouse=True)
def _clean_tuning_env(monkeypatch):
    """Sweep tests own their fault spec and counters."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    monkeypatch.delenv(TUNING_WORKERS_ENV, raising=False)
    monkeypatch.delenv(TUNING_DEADLINE_ENV, raising=False)
    faults.reset_faults()
    reset_tuning_counters()
    yield
    faults.reset_faults()
    reset_tuning_counters()


def _driver(space, tmp_path, name="j", **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("deadline_s", 60.0)
    kwargs.setdefault("sleep", lambda seconds: None)
    return SweepDriver(space, journal_path=tmp_path / f"{name}.jsonl",
                       report_path=tmp_path / f"{name}.json", **kwargs)


class TestSpace:
    def test_digest_is_canonical_and_spec_sensitive(self):
        points = SMALL.points()
        assert len(points) == len({p.digest for p in points})
        a, b = points[0], points[1]
        assert a.digest != b.digest
        # Digest depends only on the spec, not on identity or order.
        clone = type(a)(**{**a.__dict__})
        assert clone.digest == a.digest

    def test_enumeration_is_feasible(self):
        from repro.accelerators.catalog import VERSION_FLOWS
        from repro.heuristics.flexible import _fits

        space = smoke_space(shapes=((16, 16, 8),))
        for point in space.points():
            assert point.m % point.size == 0
            assert point.flow in VERSION_FLOWS[point.version]
            if point.version == 4:
                capacity = 16 * point.size * point.size
                assert _fits(*point.tiles, capacity)
            else:
                assert point.tiles == (point.size,) * 3

    def test_space_digest_pins_the_point_set(self):
        assert SMALL.digest() == SMALL.digest()
        other = smoke_space(shapes=((8, 8, 8),), versions=(1, 3))
        assert SMALL.digest() != other.digest()

    def test_permutations_fan_out_only_on_ns_flow(self):
        space = SweepSpace(shapes=((8, 8, 8),), versions=(2,),
                           permutations=all_permutations())
        permuted = [p for p in space.points() if p.permutation]
        assert permuted and all(p.flow == "Ns" for p in permuted)

    def test_group_floors_take_the_minimum(self):
        points = SMALL.points()
        floors = group_floors(points)
        for point in points:
            assert floors[point.group] <= point.modeled_bytes()


class TestJournal:
    def _journal(self, tmp_path):
        return SweepJournal(tmp_path / "sweep.jsonl")

    def test_round_trip(self, tmp_path):
        journal = self._journal(tmp_path)
        assert journal.append_meta("space0")
        assert journal.append_attempt("p1", 1)
        assert journal.append_result("p1", {"status": "ok", "metric": 1.5})
        journal.close()
        replay = self._journal(tmp_path).replay(expect_space="space0")
        assert replay.meta["space"] == "space0"
        assert replay.results == {"p1": {"status": "ok", "metric": 1.5}}
        assert replay.attempts == {"p1": 1}
        assert not replay.inflight()
        assert (replay.torn_tail, replay.corrupt, replay.duplicates) \
            == (0, 0, 0)

    def test_truncated_final_record_is_dropped(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_meta("space0")
        journal.append_result("p1", {"status": "ok"})
        journal.close()
        path = tmp_path / "sweep.jsonl"
        raw = path.read_bytes()
        # Simulate dying mid-append: half a record, no newline.
        path.write_bytes(raw + b'{"t":"result","digest":"p2","rec')
        replay = self._journal(tmp_path).replay()
        assert replay.torn_tail == 1
        assert set(replay.results) == {"p1"}

    def test_flipped_bit_fails_the_checksum(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_meta("space0")
        journal.append_result("p1", {"status": "ok", "metric": 2.0})
        journal.append_result("p2", {"status": "ok", "metric": 3.0})
        journal.close()
        path = tmp_path / "sweep.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"metric":2.0', b'"metric":2.5')
        path.write_bytes(b"".join(lines))
        replay = self._journal(tmp_path).replay()
        assert replay.corrupt == 1
        # The tampered record is gone; its neighbours survive.
        assert set(replay.results) == {"p2"}

    def test_duplicate_results_keep_the_first(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_meta("space0")
        journal.append_result("p1", {"status": "ok", "metric": 1.0})
        journal.append_result("p1", {"status": "ok", "metric": 9.0})
        journal.close()
        replay = self._journal(tmp_path).replay()
        assert replay.duplicates == 1
        assert replay.results["p1"]["metric"] == 1.0

    def test_space_mismatch_refuses_to_resume(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_meta("space0")
        journal.close()
        with pytest.raises(JournalMismatch):
            self._journal(tmp_path).replay(expect_space="other")

    def test_injected_io_fault_loses_one_append(self, tmp_path,
                                                monkeypatch):
        journal = self._journal(tmp_path)
        assert journal.append_meta("space0")
        monkeypatch.setenv("REPRO_FAULTS", "tuning.journal:io")
        faults.reset_faults()
        assert not journal.append_result("p1", {"status": "ok"})
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_faults()
        # The journal recovers: the next append lands.
        assert journal.append_result("p2", {"status": "ok"})
        journal.close()
        replay = self._journal(tmp_path).replay()
        assert set(replay.results) == {"p2"}
        assert tuning_counters()["tuning_journal_io_errors"] == 1

    def test_compaction_under_a_concurrent_reader(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append_meta("space0")
        for index in range(4):
            journal.append_attempt(f"p{index}", 1)
            journal.append_result(f"p{index}", {"status": "ok",
                                                "metric": float(index)})
        journal.close()
        path = tmp_path / "sweep.jsonl"
        old = path.read_bytes()
        results = self._journal(tmp_path).replay().results
        with open(path, "rb") as reader:
            assert journal.compact("space0", results)
            # A reader holding the pre-compaction descriptor still
            # sees the complete old journal (os.replace, not truncate).
            assert reader.read() == old
        replay = self._journal(tmp_path).replay(expect_space="space0")
        assert replay.results == results
        assert not replay.attempts  # attempt records compacted away
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_compaction_io_failure_keeps_the_old_journal(self, tmp_path,
                                                         monkeypatch):
        journal = self._journal(tmp_path)
        journal.append_meta("space0")
        journal.append_result("p1", {"status": "ok"})
        journal.close()
        path = tmp_path / "sweep.jsonl"
        old = path.read_bytes()
        monkeypatch.setenv("REPRO_FAULTS", "tuning.journal:io")
        faults.reset_faults()
        assert not journal.compact("space0", {"p1": {"status": "ok"}})
        assert path.read_bytes() == old
        assert not list(tmp_path.glob("*.tmp-*"))


class TestDriver:
    def test_clean_sweep_completes_and_reports(self, tmp_path):
        driver = _driver(SMALL, tmp_path)
        result = driver.run()
        assert result["complete"]
        report = result["report"]
        assert report["totals"]["completed"] == len(SMALL.points())
        assert report["totals"]["poisoned"] == 0
        group = report["groups"]["matmul-8x8x8"]
        assert group["best"]["metric"] == \
            min(r["metric"] for r in group["ranked"])
        # The report file is the canonical rendering, atomically placed.
        assert (tmp_path / "j.json").read_text() == render_report(report)
        assert not list(tmp_path.glob("*.tmp-*"))
        counters = tuning_counters()
        assert counters["tuning_points_completed"] == len(SMALL.points())
        assert counters["tuning_journal_compactions"] == 1

    def test_diagnostics_expose_tuning_counters(self, tmp_path):
        from repro.execution import diagnostics

        _driver(SMALL, tmp_path).run()
        section = diagnostics()["tuning"]
        assert section["tuning_points_completed"] == len(SMALL.points())

    def test_resume_serves_completed_points_from_the_journal(
            self, tmp_path, monkeypatch):
        # Interrupt a sweep after two points via the drain hook.
        driver = _driver(SMALL, tmp_path, name="resumed")
        from repro.tuning import driver as driver_module

        real_evaluate = driver_module.evaluate_point
        resolved = []

        def interrupting(spec, prune_bytes=None, deadline=None):
            outcome = real_evaluate(spec, prune_bytes, deadline)
            resolved.append(spec)
            if len(resolved) == 2:
                driver.request_stop()
            return outcome

        monkeypatch.setattr(driver_module, "evaluate_point", interrupting)
        partial = driver.run()
        assert not partial["complete"]
        assert partial["resolved"] == 2
        assert not (tmp_path / "resumed.json").exists()

        # Resume: completed points must not be recomputed.
        recomputed = []

        def counting(spec, prune_bytes=None, deadline=None):
            recomputed.append(spec)
            return real_evaluate(spec, prune_bytes, deadline)

        monkeypatch.setattr(driver_module, "evaluate_point", counting)
        reset_tuning_counters()
        resumed = _driver(SMALL, tmp_path, name="resumed").run()
        assert resumed["complete"]
        assert len(recomputed) == len(SMALL.points()) - 2
        assert tuning_counters()["tuning_points_resumed"] == 2

        # And the final report is bit-identical to an uninterrupted run.
        monkeypatch.setattr(driver_module, "evaluate_point", real_evaluate)
        clean = _driver(SMALL, tmp_path, name="clean").run()
        assert clean["complete"]
        assert (tmp_path / "resumed.json").read_bytes() \
            == (tmp_path / "clean.json").read_bytes()

    def test_wrong_space_journal_is_rejected(self, tmp_path):
        _driver(SMALL, tmp_path, name="shared").run()
        other = smoke_space(shapes=((8, 8, 8),), versions=(1, 3))
        with pytest.raises(JournalMismatch):
            _driver(other, tmp_path, name="shared").run()

    def test_poisoned_points_are_quarantined(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tuning.point:poison")
        faults.reset_faults()
        driver = _driver(SMALL, tmp_path, max_attempts=3)
        result = driver.run()
        assert result["complete"]
        totals = result["report"]["totals"]
        assert totals["poisoned"] == len(SMALL.points())
        assert totals["completed"] == 0
        for record in result["report"]["poisoned"]:
            assert record["crashes"] == 3
        counters = tuning_counters()
        assert counters["tuning_worker_crashes"] == 3 * len(SMALL.points())

    def test_injected_crashes_retry_then_succeed(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tuning.worker:crash@0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "3")
        faults.reset_faults()
        chaotic = _driver(SMALL, tmp_path, name="chaotic").run()
        assert chaotic["complete"]
        assert tuning_counters()["tuning_worker_crashes"] > 0
        # Bit-identical to the fault-free report: crashes cost retries,
        # never results.
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset_faults()
        _driver(SMALL, tmp_path, name="calm").run()
        assert (tmp_path / "chaotic.json").read_bytes() \
            == (tmp_path / "calm.json").read_bytes()

    def test_worker_errors_fail_without_retry(self, tmp_path, monkeypatch):
        from repro.tuning import driver as driver_module

        calls = []

        def exploding(spec, prune_bytes=None, deadline=None):
            calls.append(spec)
            raise ValueError("synthetic evaluation failure")

        monkeypatch.setattr(driver_module, "evaluate_point", exploding)
        result = _driver(SMALL, tmp_path).run()
        assert result["complete"]
        totals = result["report"]["totals"]
        assert totals["failed"] == len(SMALL.points())
        # Deterministic failures are final: exactly one attempt each.
        assert len(calls) == len(SMALL.points())
        for record in result["report"]["failed"]:
            assert record["error"] \
                == "ValueError: synthetic evaluation failure"

    def test_pruning_skips_expensive_configs(self, tmp_path):
        space = SweepSpace(shapes=((16, 16, 16),), versions=(2,),
                           sizes=(4,))
        # The exact estimate includes opcode-stream overhead above the
        # closed-form floor (~6% here); 1.1x keeps the stationary
        # flows and prunes the none-stationary one.
        result = _driver(space, tmp_path, prune_ratio=1.1).run()
        totals = result["report"]["totals"]
        assert totals["pruned"] >= 1
        assert totals["completed"] >= 1
        for record in result["report"]["pruned"]:
            assert record["est_bytes"] > record["prune_bytes"]

    def test_prune_ratio_zero_disables_pruning(self, tmp_path):
        # Same contract as the CLI flag: a non-positive ratio means
        # "simulate everything", not "threshold of zero bytes".
        result = _driver(SMALL, tmp_path, prune_ratio=0).run()
        totals = result["report"]["totals"]
        assert totals["pruned"] == 0
        assert totals["completed"] == len(SMALL.points())

    def test_journal_io_chaos_still_completes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "tuning.journal:io@0.3")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "1")
        faults.reset_faults()
        result = _driver(SMALL, tmp_path, name="durable").run()
        assert result["complete"]
        assert result["report"]["totals"]["completed"] \
            == len(SMALL.points())


class TestEnvKnobs:
    def test_defaults(self):
        assert tuning_workers() >= 1
        assert tuning_deadline_s() == 60.0

    def test_malformed_workers_warns_once_and_falls_back(
            self, monkeypatch):
        monkeypatch.setenv(TUNING_WORKERS_ENV, "many")
        with pytest.warns(RuntimeWarning, match=TUNING_WORKERS_ENV):
            value = tuning_workers()
        assert value == max(1, min(4, os.cpu_count() or 1))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert tuning_workers() == value  # one-shot: no second warning

    def test_malformed_deadline_warns_once_and_falls_back(
            self, monkeypatch):
        monkeypatch.setenv(TUNING_DEADLINE_ENV, "soon")
        with pytest.warns(RuntimeWarning, match=TUNING_DEADLINE_ENV):
            assert tuning_deadline_s() == 60.0
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert tuning_deadline_s() == 60.0

    def test_valid_values_are_used(self, monkeypatch):
        monkeypatch.setenv(TUNING_WORKERS_ENV, "2")
        monkeypatch.setenv(TUNING_DEADLINE_ENV, "1.5")
        assert tuning_workers() == 2
        assert tuning_deadline_s() == 1.5


class TestRetryModule:
    def test_service_reexport_is_the_shared_class(self):
        from repro.service import BackoffSchedule as service_backoff

        assert service_backoff is BackoffSchedule

    def test_retryable_by_code(self):
        codes = frozenset({"crash", "deadline"})
        assert retryable(RuntimeError("x"), code="crash",
                         retryable_codes=codes)
        assert not retryable(RuntimeError("x"), code="error",
                             retryable_codes=codes)

    def test_retryable_by_type(self):
        assert retryable(OSError("io"))
        assert not retryable(ValueError("logic"))


class TestReport:
    def test_report_is_a_pure_function_of_results(self):
        results = {}
        for index, point in enumerate(SMALL.points()):
            results[point.digest] = {
                "digest": point.digest, "spec": point.spec(),
                "status": "ok", "metric": float(index), "counters": {},
                "est_bytes": None,
            }
        one = render_report(build_report(SMALL, results))
        two = render_report(build_report(SMALL, dict(reversed(
            list(results.items())))))
        assert one == two
        assert json.loads(one)["totals"]["missing"] == 0

    def test_missing_points_are_accounted(self):
        report = build_report(SMALL, {})
        assert report["totals"]["missing"] == len(SMALL.points())
        assert report["groups"] == {}
