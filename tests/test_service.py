"""The compile/simulate service: protocol, ladder rungs, bit-identity.

The acceptance bar mirrors the rest of the degradation ladder: a
request served over the socket — through admission queues, retries,
coalescing, breakers, worker crashes, and drain — must produce exactly
the PerfCounters and output bytes of a direct in-process call to
``repro.service.worker.run_request``.
"""

import multiprocessing
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import faults
from repro.execution.model_plan import MODEL_PLAN_COUNTERS
from repro.service import (
    BackoffSchedule,
    CircuitBreaker,
    ServiceBusy,
    ServiceClient,
    ServiceServer,
    ServiceShuttingDown,
    ServiceTimeout,
    WorkerCrashed,
    errors,
    reset_service_counters,
    service_counters,
)
from repro.service import protocol
from repro.service.worker import run_request
from repro.soc import PerfCounters

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _clean_service_env(monkeypatch):
    """Service tests own their fault spec and counters — even under
    the CI chaos leg, whose ambient REPRO_FAULTS would otherwise leak
    into forked workers."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    for var in ("REPRO_SERVICE_WORKERS", "REPRO_SERVICE_QUEUE_MAX",
                "REPRO_SERVICE_TIMEOUT_S"):
        monkeypatch.delenv(var, raising=False)
    faults.reset_faults()
    reset_service_counters()
    yield
    faults.reset_faults()
    reset_service_counters()


def matmul_spec(m=8, n=8, k=8, seed=0, size=4, version=1, flow="Ns"):
    rng = np.random.default_rng(seed)
    return {
        "kind": "matmul", "m": m, "n": n, "k": k,
        "size": size, "version": version, "flow": flow,
        "inputs": [rng.integers(-8, 8, (m, k)).astype(np.int32),
                   rng.integers(-8, 8, (k, n)).astype(np.int32)],
    }


def conv_spec(batch=1, in_ch=2, in_hw=8, out_ch=3, f_hw=3, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "kind": "conv", "batch": batch, "in_ch": in_ch, "in_hw": in_hw,
        "out_ch": out_ch, "f_hw": f_hw, "stride": 1,
        "inputs": [
            rng.integers(-4, 4, (batch, in_ch, in_hw, in_hw))
            .astype(np.int32),
            rng.integers(-4, 4, (out_ch, in_ch, f_hw, f_hw))
            .astype(np.int32),
        ],
    }


def result_tuple(counters, output):
    return counters.as_dict(), output.tobytes()


# -- wire protocol ----------------------------------------------------------

class TestProtocol:
    def test_array_roundtrip_bit_identical(self):
        rng = np.random.default_rng(0)
        array = rng.integers(-1000, 1000, (7, 5)).astype(np.int32)
        frame = protocol.encode_message({"x": array})
        decoded = protocol.decode_body(frame[4:])
        assert decoded["x"].dtype == array.dtype
        assert decoded["x"].tobytes() == array.tobytes()

    def test_perf_counters_roundtrip_bit_identical(self):
        counters = PerfCounters(cpu_cycles=1234.5678901234567,
                                stall_cycles=0.1 + 0.2,
                                elapsed_seconds=1e-9,
                                dma_transactions=42)
        frame = protocol.encode_message({"c": counters})
        decoded = protocol.decode_body(frame[4:])["c"]
        assert isinstance(decoded, PerfCounters)
        assert vars(decoded) == vars(counters)

    def test_unknown_perf_field_rejected(self):
        body = b'{"c": {"__perf__": {"not_a_field": 1}}}'
        with pytest.raises(errors.ProtocolError):
            protocol.decode_body(body)

    def test_bad_json_rejected(self):
        with pytest.raises(errors.ProtocolError):
            protocol.decode_body(b"\xff not json")

    def test_oversized_frame_rejected(self):
        import struct
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)

        class FakeSock:
            def __init__(self):
                self.data = header

            def recv(self, n):
                chunk, self.data = self.data[:n], self.data[n:]
                return chunk

        with pytest.raises(errors.ProtocolError, match="announced"):
            protocol.recv_message(FakeSock())

    def test_spec_digest_keys_on_content(self):
        spec_a = matmul_spec(seed=1)
        spec_b = matmul_spec(seed=1)
        spec_c = matmul_spec(seed=2)
        assert protocol.canonical_spec_digest(spec_a) \
            == protocol.canonical_spec_digest(spec_b)
        assert protocol.canonical_spec_digest(spec_a) \
            != protocol.canonical_spec_digest(spec_c)


# -- seeded backoff (satellite: retry-schedule determinism) -----------------

class TestBackoffDeterminism:
    def test_same_seed_same_site_same_schedule(self):
        first = list(BackoffSchedule(7, "submit").delays(8))
        second = list(BackoffSchedule(7, "submit").delays(8))
        assert first == second  # exact float equality, across instances

    def test_different_seed_different_schedule(self):
        assert list(BackoffSchedule(7, "submit").delays(8)) \
            != list(BackoffSchedule(8, "submit").delays(8))

    def test_different_site_different_schedule(self):
        assert list(BackoffSchedule(7, "submit").delays(8)) \
            != list(BackoffSchedule(7, "health").delays(8))

    def test_jitter_and_cap_bounds(self):
        schedule = BackoffSchedule(3, "submit", base=0.05, factor=2.0,
                                   max_delay=2.0, jitter=0.5)
        for attempt, delay in enumerate(schedule.delays(12)):
            floor = min(0.05 * 2.0 ** attempt, 2.0)
            assert floor <= delay <= floor * 1.5

    def test_client_uses_schedule_between_retries(self, monkeypatch):
        """The sleeps a retrying client performs are exactly the seeded
        schedule — pinned against a stub server that sheds then serves."""
        import socket as socket_mod
        import tempfile
        import threading

        path = os.path.join(tempfile.mkdtemp(), "stub.sock")
        listener = socket_mod.socket(socket_mod.AF_UNIX,
                                     socket_mod.SOCK_STREAM)
        listener.bind(path)
        listener.listen(4)

        def stub():
            conn, _ = listener.accept()
            for attempt in range(3):
                msg = protocol.recv_message(conn)
                if attempt < 2:
                    protocol.send_message(conn, {
                        "request_id": msg["request_id"],
                        "status": "error", "code": errors.BUSY,
                        "message": "shed",
                    })
                else:
                    protocol.send_message(conn, {
                        "request_id": msg["request_id"],
                        "status": "ok", "echo": True,
                    })
            conn.close()

        thread = threading.Thread(target=stub, daemon=True)
        thread.start()
        slept = []
        client = ServiceClient(path, seed=5, max_attempts=4,
                               sleep=slept.append)
        reply = client._call({"op": "submit", "request_id": "r",
                              "spec": {}}, site="submit")
        client.close()
        thread.join(timeout=5)
        assert reply["echo"] is True
        assert slept == list(BackoffSchedule(5, "submit").delays(2))

    def test_lost_response_times_out_and_retries_same_request_id(self):
        """A server that swallows a response (the ``service.rpc:io``
        failure mode) must not wedge the client: the recv times out,
        the client reconnects, and the retry carries the *same*
        request_id so the server can serve it idempotently."""
        import socket as socket_mod
        import tempfile
        import threading

        path = os.path.join(tempfile.mkdtemp(), "stub.sock")
        listener = socket_mod.socket(socket_mod.AF_UNIX,
                                     socket_mod.SOCK_STREAM)
        listener.bind(path)
        listener.listen(4)
        seen_ids = []

        def stub():
            # First connection: read the request, never respond.
            conn, _ = listener.accept()
            seen_ids.append(protocol.recv_message(conn)["request_id"])
            # Second connection (client reconnected after recv timeout).
            conn2, _ = listener.accept()
            msg = protocol.recv_message(conn2)
            seen_ids.append(msg["request_id"])
            protocol.send_message(conn2, {
                "request_id": msg["request_id"],
                "status": "ok", "echo": True,
            })
            conn.close()
            conn2.close()

        thread = threading.Thread(target=stub, daemon=True)
        thread.start()
        slept = []
        client = ServiceClient(path, seed=5, max_attempts=3,
                               response_timeout_s=0.2,
                               sleep=slept.append)
        reply = client.submit({"kind": "noop"}, request_id="stable-id")
        client.close()
        thread.join(timeout=5)
        assert reply["echo"] is True
        assert seen_ids == ["stable-id", "stable-id"]
        assert len(slept) == 1  # one backoff between the two attempts


# -- circuit breaker state machine ------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("b", threshold=3, cooldown_s=60)
        for _ in range(2):
            breaker.record(ok=False)
        assert breaker.allow()["enabled"]
        breaker.record(ok=False)
        assert breaker.state == "open"
        assert not breaker.allow()["enabled"]
        assert breaker.snapshot()["trips"] == 1

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker("b", threshold=2, cooldown_s=60)
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker("b", threshold=1, cooldown_s=0.0)
        breaker.record(ok=False)
        first = breaker.allow()
        assert first == {"enabled": True, "probe": True}
        # Only one probe at a time; the next request stays degraded.
        assert breaker.allow() == {"enabled": False, "probe": False}
        breaker.record(ok=True, probe=True)
        assert breaker.state == "closed"
        assert breaker.allow() == {"enabled": True, "probe": False}

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker("b", threshold=1, cooldown_s=0.0)
        breaker.record(ok=False)
        assert breaker.allow()["probe"]
        breaker.record(ok=False, probe=True)
        assert breaker.snapshot()["trips"] == 2


# -- server integration -----------------------------------------------------

class TestService:
    def test_matmul_and_conv_bit_identical_to_direct(self):
        specs = [matmul_spec(seed=3), conv_spec(seed=4)]
        direct = [result_tuple(*run_request(dict(s))) for s in specs]
        server = ServiceServer(workers=2, queue_max=8).start()
        try:
            with ServiceClient(server.address) as client:
                for spec, expected in zip(specs, direct):
                    reply = client.submit(spec)
                    assert result_tuple(reply["counters"],
                                        reply["output"]) == expected
        finally:
            server.drain()

    def test_busy_shed_carries_retry_after(self, monkeypatch):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            monkeypatch.setenv("REPRO_FAULTS", "service.queue:full")
            with ServiceClient(server.address, max_attempts=1) as client:
                with pytest.raises(ServiceBusy) as excinfo:
                    client.submit(matmul_spec())
            assert excinfo.value.retry_after_s > 0
            assert service_counters()["service_shed_busy"] == 1
        finally:
            monkeypatch.delenv("REPRO_FAULTS")
            server.drain()

    def test_retry_absorbs_probabilistic_shedding(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "service.queue:full@0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "0")
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            slept = []
            with ServiceClient(server.address, seed=2, max_attempts=10,
                               sleep=slept.append) as client:
                reply = client.submit(matmul_spec(seed=9))
            assert reply["status"] == "ok"
            counters = service_counters()
            # The seeded queue stream shed at least one admission, and
            # every shed produced one client-side backoff sleep.
            assert counters["service_shed_busy"] >= 1
            assert len(slept) == counters["service_shed_busy"]
        finally:
            server.drain()

    def test_deadline_timeout_is_structured(self):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            with ServiceClient(server.address, max_attempts=1) as client:
                with pytest.raises(ServiceTimeout):
                    client.submit(matmul_spec(m=32, n=32, k=32),
                                  deadline_s=1e-6)
            assert service_counters()["service_timeouts"] >= 1
        finally:
            server.drain()

    def test_bad_request_is_not_retried(self):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            slept = []
            with ServiceClient(server.address, max_attempts=5,
                               sleep=slept.append) as client:
                with pytest.raises(errors.BadRequest):
                    client.submit({"kind": "fft", "inputs": []})
                spec = matmul_spec()
                spec["inputs"] = [spec["inputs"][0]]
                with pytest.raises(errors.BadRequest):
                    client.submit(spec)
            assert slept == []  # BAD_REQUEST must fail fast
        finally:
            server.drain()

    def test_idempotent_request_id_returns_cached_response(self):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            with ServiceClient(server.address) as client:
                spec = matmul_spec(seed=5)
                first = client.submit(spec, request_id="req-1")
                replay = client.submit(matmul_spec(seed=6),
                                       request_id="req-1")
            # Same request_id → the cached response, even though the
            # replayed submit carried a different spec (lost-response
            # retries resend the same id, never a new computation).
            assert replay.get("idempotent") is True
            assert result_tuple(replay["counters"], replay["output"]) \
                == result_tuple(first["counters"], first["output"])
            assert service_counters()["service_idempotent_hits"] == 1
        finally:
            server.drain()

    def test_single_flight_coalesces_identical_inflight(self):
        import threading

        server = ServiceServer(workers=1, queue_max=8).start()
        try:
            blocker = matmul_spec(m=48, n=48, k=48, seed=7)
            shared = matmul_spec(seed=8)
            results = []

            def submit(spec):
                with ServiceClient(server.address) as client:
                    reply = client.submit(spec)
                    results.append(result_tuple(reply["counters"],
                                                reply["output"]))

            threads = [threading.Thread(target=submit, args=(blocker,))]
            threads[0].start()
            with ServiceClient(server.address) as probe:
                while probe.health()["executing"] == 0:
                    time.sleep(0.005)
                # Worker busy: both identical submits are now queued
                # together, so the second must coalesce onto the first.
                for _ in range(2):
                    threads.append(threading.Thread(target=submit,
                                                    args=(shared,)))
                    threads[-1].start()
                    while True:
                        health = probe.health()
                        if health["queue_depth"] >= 1 or \
                                health["counters"]["service_coalesced"]:
                            break
                        time.sleep(0.005)
            for thread in threads:
                thread.join(timeout=60)
            assert len(results) == 3
            assert service_counters()["service_coalesced"] >= 1
            direct = result_tuple(*run_request(dict(shared)))
            assert sum(r == direct for r in results) == 2
        finally:
            server.drain()

    def test_worker_crash_exhausts_requeues_then_recovers(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "service.worker:crash")
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            with ServiceClient(server.address, max_attempts=1) as client:
                with pytest.raises(WorkerCrashed):
                    client.submit(matmul_spec(seed=11))
            counters = service_counters()
            assert counters["service_worker_crashes"] == 3
            assert counters["service_requeues"] == 2
            # Every crash restarts the slot eagerly — including the
            # last one, so the pool never sits with a dead slot.
            assert counters["service_worker_restarts"] == 3
            # Fault lifted.  The eagerly-restarted slot was forked
            # *before* the env change, so it still carries the crash
            # fault and dies once more; its replacement (forked after)
            # runs clean and the requeued request succeeds.
            monkeypatch.delenv("REPRO_FAULTS")
            faults.reset_faults()
            spec = matmul_spec(seed=12)
            with ServiceClient(server.address) as client:
                reply = client.submit(spec)
            assert result_tuple(reply["counters"], reply["output"]) \
                == result_tuple(*run_request(dict(spec)))
            assert service_counters()["service_worker_restarts"] == 4
        finally:
            server.drain()

    def test_killed_worker_is_detected_and_request_requeued(self):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            handle = server._handles[0]
            if handle is None:
                pytest.skip("no fork: workers run inline")
            handle.process.kill()
            handle.process.join(timeout=5)
            spec = matmul_spec(seed=13)
            with ServiceClient(server.address) as client:
                reply = client.submit(spec)
            assert result_tuple(reply["counters"], reply["output"]) \
                == result_tuple(*run_request(dict(spec)))
            counters = service_counters()
            assert counters["service_worker_crashes"] == 1
            assert counters["service_requeues"] == 1
            assert counters["service_worker_restarts"] == 1
        finally:
            server.drain()

    def test_store_breaker_trips_on_injected_store_failures(
            self, monkeypatch, tmp_path):
        from repro.compiler import default_kernel_cache

        # Forked workers inherit the process-wide memory cache; clear
        # it so each request actually compiles and publishes (and so
        # the injected write failures actually happen).
        default_kernel_cache().clear()
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path / "s"))
        monkeypatch.setenv("REPRO_FAULTS", "store.write:io")
        server = ServiceServer(workers=1, queue_max=8,
                               breaker_threshold=2,
                               breaker_cooldown_s=60.0).start()
        try:
            with ServiceClient(server.address) as client:
                # Distinct shapes: every request compiles fresh and
                # attempts (and fails) a store publish.
                for seed, m in ((1, 8), (2, 12)):
                    client.submit(matmul_spec(m=m, seed=seed))
                health = client.health()
                assert health["breakers"]["store"]["state"] == "open"
                assert health["breakers"]["store"]["trips"] == 1
                # Open breaker: requests run store-suspended (and still
                # succeed bit-identically).
                spec = matmul_spec(m=16, seed=3)
                reply = client.submit(spec)
                assert client.health()["breakers"]["store"]["state"] \
                    == "open"
            monkeypatch.delenv("REPRO_FAULTS")
            monkeypatch.delenv("REPRO_KERNEL_CACHE_DIR")
            faults.reset_faults()
            assert result_tuple(reply["counters"], reply["output"]) \
                == result_tuple(*run_request(dict(spec)))
        finally:
            server.drain()

    def test_drain_merges_worker_deltas_and_refuses_new_work(self):
        workers_before = MODEL_PLAN_COUNTERS.get("model_plan_workers", 0)
        server = ServiceServer(workers=2, queue_max=8).start()
        spec = matmul_spec(seed=14)
        with ServiceClient(server.address) as client:
            client.submit(spec)
        # Draining: in-flight work finishes, then submits are refused.
        server._draining = True
        with ServiceClient(server.address, max_attempts=1) as client:
            with pytest.raises(ServiceShuttingDown):
                client.submit(matmul_spec(seed=15))
        summary = server.drain()
        assert summary["counters"]["service_workers_merged"] == 2
        assert MODEL_PLAN_COUNTERS["model_plan_workers"] \
            == workers_before + 2
        # The socket is gone: connecting is a hard error, not a hang.
        with pytest.raises((OSError, errors.InternalServiceError)):
            with ServiceClient(server.address, max_attempts=2,
                               sleep=lambda _s: None) as client:
                client.submit(matmul_spec(seed=16))

    def test_health_reports_queue_breakers_and_faults(self):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            with ServiceClient(server.address) as client:
                client.submit(matmul_spec(seed=17))
                health = client.health()
                stats = client.stats()
            assert health["status"] == "ok"
            assert health["queue_max"] == 4
            assert set(health["breakers"]) == {"store", "native"}
            assert health["counters"]["service_requests"] == 1
            assert "service" in stats["diagnostics"]
            assert stats["diagnostics"]["service"][
                "service_requests"] == 1
        finally:
            server.drain()


# -- multi-client stress: the acceptance criterion --------------------------

STRESS_SPECS = [
    ("matmul", dict(m=8, n=8, k=8, seed=21)),
    ("matmul", dict(m=16, n=8, k=8, seed=22)),
    ("matmul", dict(m=8, n=16, k=8, seed=23, version=2, flow="As")),
    ("conv", dict(seed=24)),
    ("conv", dict(in_ch=3, seed=25)),
    ("matmul", dict(m=12, n=12, k=8, seed=26)),
]


def build_spec(kind, params):
    return matmul_spec(**params) if kind == "matmul" \
        else conv_spec(**params)


def _stress_client(address, client_index, n_requests, queue):
    try:
        with ServiceClient(address, seed=client_index,
                           max_attempts=12) as client:
            for i in range(n_requests):
                spec_index = (client_index + i) % len(STRESS_SPECS)
                spec = build_spec(*STRESS_SPECS[spec_index])
                reply = client.submit(spec, deadline_s=120.0)
                queue.put((spec_index,
                           reply["counters"].as_dict(),
                           reply["output"].tobytes()))
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        queue.put(("error", repr(exc), None))


def _run_stress(n_clients, n_requests, server_kwargs):
    """Fork N client processes against one in-process server; returns
    the list of (spec_index, counters_dict, output_bytes) results."""
    server = ServiceServer(**server_kwargs).start()
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    clients = [
        context.Process(target=_stress_client,
                        args=(server.address, index, n_requests, queue))
        for index in range(n_clients)
    ]
    try:
        for process in clients:
            process.start()
        results = []
        for _ in range(n_clients * n_requests):
            results.append(queue.get(timeout=300))
        for process in clients:
            process.join(timeout=30)
    finally:
        summary = server.drain()
    failures = [r for r in results if r[0] == "error"]
    assert not failures, failures
    return results, summary


class TestMultiClientStress:
    @pytest.fixture(scope="class")
    def direct_baselines(self):
        """Direct in-process execution of every stress spec — computed
        with ambient faults stripped (the class also runs on the CI
        chaos leg, where results must match these bit-for-bit)."""
        ambient = {name: os.environ.pop(name, None)
                   for name in ("REPRO_FAULTS", "REPRO_FAULTS_SEED")}
        faults.reset_faults()
        try:
            return [result_tuple(*run_request(build_spec(kind, params)))
                    for kind, params in STRESS_SPECS]
        finally:
            for name, value in ambient.items():
                if value is not None:
                    os.environ[name] = value

    def test_stress_clean_bit_identity(self, direct_baselines):
        results, summary = _run_stress(
            n_clients=4, n_requests=3,
            server_kwargs=dict(workers=2, queue_max=16))
        assert len(results) == 12
        for spec_index, counters_dict, output_bytes in results:
            assert (counters_dict, output_bytes) \
                == direct_baselines[spec_index]
        assert summary["counters"]["service_workers_merged"] == 2

    def test_stress_chaos_bit_identity(self, direct_baselines,
                                       monkeypatch):
        # The CI chaos profile plus the service sites.  Seed 2 keeps
        # the crash stream's first draws above 0.1: a restarted
        # worker's first job never immediately re-crashes, so every
        # request completes within the requeue budget.  (Each restart
        # re-forks the parent's pristine stream state — a seed whose
        # first draw fired would crash-loop deterministically.)
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "store.read:io@0.2;store.write:io@0.1;"
            "store.lock:timeout@0.2;native.compile:fail;"
            "service.worker:crash@0.1;service.queue:full@0.1")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "2")
        faults.reset_faults()
        results, summary = _run_stress(
            n_clients=4, n_requests=3,
            server_kwargs=dict(workers=2, queue_max=16))
        assert len(results) == 12
        for spec_index, counters_dict, output_bytes in results:
            assert (counters_dict, output_bytes) \
                == direct_baselines[spec_index]
        # Every worker still alive at drain reported its delta.
        assert summary["counters"]["service_workers_merged"] == 2


# -- the example script doubles as a subprocess smoke test ------------------

class TestExampleScript:
    def test_service_client_example_runs(self):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        # The example demonstrates clean-path behavior; scrub the CI
        # chaos leg's ambient faults so its single worker stays up.
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_FAULTS_SEED", None)
        result = subprocess.run(
            [sys.executable,
             os.path.join(REPO_ROOT, "examples", "service_client.py")],
            capture_output=True, text=True, timeout=300, env=env,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        for marker in ("matmul:", "conv:", "flood:", "backoff:",
                       "health:", "drain:"):
            assert marker in result.stdout, result.stdout
