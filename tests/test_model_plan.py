"""Model-granularity replay (repro.execution.model_plan).

The contract under test: running a kernel *sequence* through a
:class:`ModelSession` — fused ModelPlan record/replay, inter-kernel
cache warm-state carry, worker-pool dispatch — is **bit-identical** to
running the same sequence step-by-step through the per-kernel metrics
plane (the ``REPRO_NO_MODEL_PLAN=1`` path): PerfCounters, output
arrays, the board clock, and the exact LRU warm state
(:func:`repro.soc.cache.warm_state_digest`) all match.

Every scenario drives the same tiny two-kernel sequences (a matmul
schedule and a manual+generated conv pair, miniatures of fig17/fig16)
so the whole file stays fast.
"""

import numpy as np
import pytest

from repro.accelerators import ConvAccelerator, make_conv_system, \
    make_matmul_system
from repro.baselines import cpu_conv, manual_conv_driver
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.execution import (
    MODEL_PLAN_COUNTERS,
    ModelPlanMismatch,
    ModelSession,
    model_check_requested,
    model_plan_enabled,
    model_workers,
    reset_model_plan_counters,
    reset_model_plans,
    run_model_jobs,
)
from repro.soc import make_pynq_z2
from repro.soc.cache import warm_state_digest

#: (m, n, k, size, version, flow, accel_size) — two small fig17-style steps.
MATMUL_SPECS = ((16, 16, 16, 8, 3, "Ns", None),
                (32, 16, 16, 8, 2, "As", None))


@pytest.fixture(autouse=True)
def _fresh_model_registry():
    reset_model_plans()
    reset_model_plan_counters()
    yield
    reset_model_plans()


def _matmul_data(m, n, k, seed=5):
    rng = np.random.default_rng(seed)
    a = rng.integers(-7, 7, (m, k)).astype(np.int32)
    b = rng.integers(-7, 7, (k, n)).astype(np.int32)
    return a, b


def run_matmul_sequence(name="model-test-matmul", specs=MATMUL_SPECS):
    """One ModelSession over ``specs``; returns (states, fused plan)."""
    board = make_pynq_z2()
    session = ModelSession(name, board)
    states = []
    for spec in specs:
        m, n, k, size, version, flow, accel = spec
        hw, info = make_matmul_system(version, size, flow=flow,
                                      accel_size=accel)
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(
            info, kernel_cache=KernelCache()
        ).compile_matmul(m, n, k)
        a, b = _matmul_data(m, n, k)
        c = np.zeros((m, n), np.int32)
        counters = session.run(kernel, a, b, c, step_key=("mm",) + spec)
        expected = (a.astype(np.int64) @ b.astype(np.int64))
        assert np.array_equal(c, expected)
        states.append((counters.as_dict(), c.tobytes(),
                       warm_state_digest(board.caches), board.clock))
    return states, session.finish()


def run_conv_sequence(name="model-test-conv"):
    """A manual step and a generated step sharing one warm board."""
    board = make_pynq_z2()
    session = ModelSession(name, board)
    rng = np.random.default_rng(23)
    image = rng.integers(-4, 4, (1, 4, 8, 8)).astype(np.int32)
    weights = rng.integers(-4, 4, (2, 4, 3, 3)).astype(np.int32)
    expected, _ = cpu_conv(make_pynq_z2(), image, weights, 1)
    states = []

    out = np.zeros((1, 2, 6, 6), np.int32)
    board.attach_accelerator(ConvAccelerator(max_ic=4, max_fhw=3))
    counters = manual_conv_driver(
        board, image, weights, out, 1,
        plan_source=session.plan_source(("manual-conv",)),
    )
    assert np.array_equal(out, expected)
    states.append((counters.as_dict(), out.tobytes(),
                   warm_state_digest(board.caches), board.clock))

    hw, info = make_conv_system(4, 3)
    board.attach_accelerator(hw)
    kernel = AXI4MLIRCompiler(
        info, kernel_cache=KernelCache()
    ).compile_conv(1, 4, 8, 2, 3, 1)
    out = np.zeros((1, 2, 6, 6), np.int32)
    counters = session.run(kernel, image, weights, out,
                           step_key=("gen-conv",))
    assert np.array_equal(out, expected)
    states.append((counters.as_dict(), out.tobytes(),
                   warm_state_digest(board.caches), board.clock))
    return states, session.finish()


class TestFusedBitIdentity:
    @pytest.mark.ambient_faults_incompatible
    def test_matmul_record_and_replay_match_per_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MODEL_PLAN", "1")
        kill, none_plan = run_matmul_sequence()
        assert none_plan is None
        assert MODEL_PLAN_COUNTERS["model_plan_fallback"] == \
            len(MATMUL_SPECS)
        monkeypatch.delenv("REPRO_NO_MODEL_PLAN")

        recorded, plan = run_matmul_sequence()
        assert MODEL_PLAN_COUNTERS["model_plan_misses"] == 1
        assert plan is not None and len(plan) == len(MATMUL_SPECS)

        replayed, plan2 = run_matmul_sequence()
        assert MODEL_PLAN_COUNTERS["model_plan_hits"] == 1
        assert MODEL_PLAN_COUNTERS["model_plan_step_hits"] == \
            len(MATMUL_SPECS)
        assert plan2 is plan

        assert kill == recorded == replayed

    @pytest.mark.ambient_faults_incompatible
    def test_conv_manual_and_generated_steps_fuse(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MODEL_PLAN", "1")
        kill, _ = run_conv_sequence()
        monkeypatch.delenv("REPRO_NO_MODEL_PLAN")
        recorded, plan = run_conv_sequence()
        replayed, _ = run_conv_sequence()
        assert kill == recorded == replayed
        # Both the manual-driver step and the generated step recorded
        # fused sub-plans, and both replayed from them.
        assert plan is not None and len(plan) == 2
        assert MODEL_PLAN_COUNTERS["model_plan_step_hits"] == 2

    @pytest.mark.ambient_faults_incompatible
    def test_timeline_is_stitched_per_step_end_states(self):
        _, plan = run_matmul_sequence()
        timeline = plan.timeline()
        assert timeline.shape == (len(MATMUL_SPECS), 9)
        # Absolute end states: clock (column 5) advances monotonically.
        assert np.all(np.diff(timeline[:, 5]) > 0)
        # Replaying yields the identical fused timeline.
        _, plan2 = run_matmul_sequence()
        assert np.array_equal(plan2.timeline(), timeline)

    @pytest.mark.ambient_faults_incompatible
    def test_divergence_keeps_prefix_and_rerecords(self, monkeypatch):
        run_matmul_sequence()
        diverged_specs = (MATMUL_SPECS[0],
                          (16, 32, 16, 8, 3, "Bs", None))
        monkeypatch.setenv("REPRO_NO_MODEL_PLAN", "1")
        kill, _ = run_matmul_sequence(specs=diverged_specs)
        monkeypatch.delenv("REPRO_NO_MODEL_PLAN")
        reset_model_plan_counters()
        live, plan = run_matmul_sequence(specs=diverged_specs)
        assert MODEL_PLAN_COUNTERS["model_plan_divergence"] == 1
        assert MODEL_PLAN_COUNTERS["model_plan_step_hits"] == 1
        assert MODEL_PLAN_COUNTERS["model_plan_misses"] == 1
        assert live == kill
        assert plan is not None and len(plan) == 2
        # The re-recorded plan replays cleanly on the next session.
        again, _ = run_matmul_sequence(specs=diverged_specs)
        assert again == live
        assert MODEL_PLAN_COUNTERS["model_plan_hits"] == 1

    def test_fault_site_forces_per_kernel_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MODEL_PLAN", "1")
        kill, _ = run_matmul_sequence()
        monkeypatch.delenv("REPRO_NO_MODEL_PLAN")
        monkeypatch.setenv("REPRO_FAULTS", "model.plan:fail@1.0")
        faulted, plan = run_matmul_sequence()
        assert plan is None
        assert MODEL_PLAN_COUNTERS["model_plan_fallback"] >= \
            len(MATMUL_SPECS)
        assert faulted == kill


class TestCrossCheck:
    def test_metrics_check_implies_model_check(self, monkeypatch):
        monkeypatch.delenv("REPRO_MODEL_CHECK", raising=False)
        monkeypatch.setenv("REPRO_METRICS_CHECK", "1")
        assert model_check_requested()

    @pytest.mark.ambient_faults_incompatible
    def test_clean_replay_passes_under_check(self, monkeypatch):
        run_matmul_sequence()
        monkeypatch.setenv("REPRO_MODEL_CHECK", "1")
        replayed, _ = run_matmul_sequence()
        assert MODEL_PLAN_COUNTERS["model_plan_step_hits"] == \
            len(MATMUL_SPECS)

    @pytest.mark.ambient_faults_incompatible
    def test_tampered_sub_plan_raises(self, monkeypatch):
        _, plan = run_matmul_sequence()
        tampered = plan.steps[1][1]
        tampered.final_state = \
            np.asarray(tampered.final_state, dtype=np.float64) + 1.0
        monkeypatch.setenv("REPRO_MODEL_CHECK", "1")
        with pytest.raises(ModelPlanMismatch):
            run_matmul_sequence()


class TestWarmStateCarry:
    """The fig16/fig17 accounting fix: layers share one warm board."""

    def _step_pair(self, shared_board: bool):
        m, n, k, size, version, flow = 32, 32, 32, 8, 3, "Ns"
        hw, info = make_matmul_system(version, size, flow=flow)
        kernel = AXI4MLIRCompiler(
            info, kernel_cache=KernelCache()
        ).compile_matmul(m, n, k)
        a, b = _matmul_data(m, n, k)
        boards = []
        states = []
        board = make_pynq_z2()
        for _ in range(2):
            if not shared_board:
                board = make_pynq_z2()
            board.attach_accelerator(
                make_matmul_system(version, size, flow=flow)[0])
            c = np.zeros((m, n), np.int32)
            counters = kernel.run(board, a, b, c)
            states.append(counters.as_dict())
            boards.append(board)
        return states, boards

    def test_second_step_sees_warm_state(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MODEL_PLAN", "1")
        cold, cold_boards = self._step_pair(shared_board=False)
        warm, warm_boards = self._step_pair(shared_board=True)
        # Identical kernel, identical data: only the carried board
        # state differs, and it must show up in the accounting.
        assert warm[0] == cold[0]
        assert warm[1] != cold[1]
        # Each run wraps fresh simulated allocations, so the carried
        # LRU contents change eviction *victims*, never the compulsory
        # miss count — a drift here means the carry went wrong.
        assert warm[1]["cache_misses"] == cold[1]["cache_misses"]
        # The second warm step starts from (and extends) the first
        # step's live LRU contents instead of a cold hierarchy.
        assert warm_state_digest(warm_boards[1].caches) != \
            warm_state_digest(cold_boards[1].caches)
        assert warm_state_digest(cold_boards[1].caches) == \
            warm_state_digest(cold_boards[0].caches)

    def test_session_path_equals_shared_board_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_MODEL_PLAN", "1")
        warm, _ = self._step_pair(shared_board=True)
        monkeypatch.delenv("REPRO_NO_MODEL_PLAN")
        spec = (32, 32, 32, 8, 3, "Ns", None)
        session_states, _ = run_matmul_sequence(
            name="warm-carry", specs=(spec, spec))
        assert [s[0] for s in session_states] == warm


class TestPersistence:
    @pytest.mark.ambient_faults_incompatible
    def test_store_roundtrip_replays_from_disk(self, monkeypatch,
                                               tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        recorded, plan = run_matmul_sequence(name="persisted")
        entries = list((tmp_path / "objects").rglob("model-*.entry"))
        assert len(entries) == 1
        # Forget the in-memory registry: the next session must come
        # back bit-identical from the persisted fused plan.
        reset_model_plans()
        reset_model_plan_counters()
        replayed, plan2 = run_matmul_sequence(name="persisted")
        assert MODEL_PLAN_COUNTERS["model_plan_step_hits"] == \
            len(MATMUL_SPECS)
        assert replayed == recorded
        assert np.array_equal(plan2.timeline(), plan.timeline())

    @pytest.mark.ambient_faults_incompatible
    def test_stale_schema_evicts_only_the_model_plan(self, monkeypatch,
                                                     tmp_path):
        from repro.compiler import KERNEL_STORE_VERSION
        from repro.execution.model_plan import _store_entry_name
        from repro.store import KernelStore

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        run_matmul_sequence(name="stale-schema")
        objects = tmp_path / "objects"
        kernel_entries = sorted(objects.rglob("kernel-*.entry"))
        assert kernel_entries  # generated kernels persisted alongside
        # Overwrite the model entry with a stale-schema payload.
        store = KernelStore(tmp_path)
        entry = _store_entry_name("stale-schema")
        assert store.store(entry, {"store_version": KERNEL_STORE_VERSION,
                                   "model_schema": -1, "plan": None})
        reset_model_plans()
        reset_model_plan_counters()
        rerecorded, plan = run_matmul_sequence(name="stale-schema")
        assert MODEL_PLAN_COUNTERS["model_plan_stale"] == 1
        assert MODEL_PLAN_COUNTERS["model_plan_step_hits"] == 0
        assert MODEL_PLAN_COUNTERS["model_plan_misses"] == 1
        assert plan is not None
        # Eviction was surgical: every kernel entry survived.
        assert sorted(objects.rglob("kernel-*.entry")) == kernel_entries

    def test_foreign_fingerprint_leaves_entry_alone(self, monkeypatch,
                                                    tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        run_matmul_sequence(name="foreign")
        reset_model_plans()
        # Same model name, different start state: the persisted plan's
        # fingerprint cannot match, but it is not *stale* — the session
        # records its own run and the entry is not quarantined.
        board = make_pynq_z2()
        board.caches.l1.access_line(7)  # perturb the start state
        session = ModelSession("foreign", board)
        assert session._plan is None
        assert MODEL_PLAN_COUNTERS["model_plan_stale"] == 0


class TestWorkerPool:
    def test_pool_results_match_inline(self, monkeypatch):
        from repro.experiments.harness import run_matmul_model

        specs_a = (MATMUL_SPECS[0],)
        specs_b = (MATMUL_SPECS[1],)
        jobs = [(run_matmul_model, (specs_a,)),
                (run_matmul_model, (specs_b,))]
        monkeypatch.setenv("REPRO_MODEL_WORKERS", "1")
        inline = run_model_jobs(jobs)
        assert MODEL_PLAN_COUNTERS["model_plan_workers"] == 0
        monkeypatch.setenv("REPRO_MODEL_WORKERS", "2")
        reset_model_plans()
        pooled = run_model_jobs(jobs)
        assert [[c.as_dict() for c in r] for r in pooled] == \
            [[c.as_dict() for c in r] for r in inline]

    def test_pool_merges_worker_diagnostics(self, monkeypatch):
        from repro.execution import STAGE_TIMINGS
        from repro.execution.metrics import METRICS_PLAN_COUNTERS
        from repro.experiments.harness import run_matmul_model

        monkeypatch.setenv("REPRO_MODEL_WORKERS", "2")
        before_build = STAGE_TIMINGS["metrics_plan_build_s"]
        before_misses = METRICS_PLAN_COUNTERS["metrics_plan_misses"]
        run_model_jobs([(run_matmul_model, ((MATMUL_SPECS[0],),)),
                        (run_matmul_model, ((MATMUL_SPECS[1],),))])
        # The builds happened in forked workers; the parent's stage
        # timings and counters must still account for them.
        assert MODEL_PLAN_COUNTERS["model_plan_workers"] == 2
        assert STAGE_TIMINGS["metrics_plan_build_s"] > before_build
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] > \
            before_misses

    def test_malformed_worker_count_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_WORKERS", "three-ish")
        with pytest.warns(RuntimeWarning, match="REPRO_MODEL_WORKERS"):
            assert model_workers() >= 1
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            model_workers()  # second read: no second warning


class TestSwitches:
    def test_metrics_kill_switch_disables_model_plans(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_METRICS_PLAN", "1")
        assert not model_plan_enabled()

    def test_finished_session_rejects_new_steps(self):
        board = make_pynq_z2()
        session = ModelSession("finished", board)
        session.finish()
        with pytest.raises(RuntimeError, match="finished"):
            session.run(None, step_key=("late",))
