"""Counter-equivalence of trace-compiled replay vs per-tile execution.

The contract under test: for every supported configuration,
``kernel.run(trace=True)`` (record the driver schedule once, replay it
as batched numpy) produces **bit-identical** results to
``kernel.run(trace=False)`` (the per-tile runtime) — the PerfCounters,
the output arrays (byte-for-byte), the board clock, the cache
hit/miss totals *and* final LRU contents, the DMA staging regions, and
the accelerator statistics.

Wide element types (i64/f64) cannot reach the accelerator end-to-end —
the AXI stream carries 32-bit words and the behavioural models reject
wider dtypes — so for those the contract degrades to: the trace path
must fall back without changing per-tile semantics (including error
behaviour).  Their staging/copy cost paths share the memoized copy
plans exercised by test_copy_equivalence.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerators import make_conv_system, make_matmul_system
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.runtime import (
    AxiRuntime,
    CALL_STYLE_MANUAL,
    DoubleBufferedRuntime,
)
from repro.soc import make_pynq_z2


def _board_state(board, hw):
    caches = board.caches
    return {
        "clock": board.clock,
        "accel_ready_at": board.accel_ready_at,
        "dma_busy_until": board.dma_busy_until,
        "l1": (caches.l1.hits, caches.l1.misses),
        "l2": (caches.l2.hits, caches.l2.misses),
        "l1_sets": [tuple(ways) for ways in caches.l1._sets],
        "l2_sets": [tuple(ways) for ways in caches.l2._sets],
        "accel": (hw.total_cycles, hw.instructions_executed),
        "in_region": board.dma.input_words.tobytes()
        if board.dma is not None else b"",
        "out_region": board.dma.output_words.tobytes()
        if board.dma is not None else b"",
    }


def run_matmul_pair(version, size, flow, m, n, k, dtype=np.int32,
                    accel_size=None, cpu_tiling=True, specialized=True,
                    runtime_cls=None, runtime_kwargs=None, seed=11,
                    runs=1):
    """Run the same kernel per-tile and trace-replayed; return both."""
    results = []
    for trace in (False, True):
        hw, info = make_matmul_system(version, size, flow=flow,
                                      dtype=dtype, accel_size=accel_size)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(
            info, kernel_cache=KernelCache(), enable_cpu_tiling=cpu_tiling,
            specialized_copies=specialized,
        ).compile_matmul(m, n, k)
        rng = np.random.default_rng(seed)
        if np.issubdtype(np.dtype(dtype), np.integer):
            a = rng.integers(-7, 7, (m, k)).astype(dtype)
            b = rng.integers(-7, 7, (k, n)).astype(dtype)
        else:
            a = rng.standard_normal((m, k)).astype(dtype)
            b = rng.standard_normal((k, n)).astype(dtype)
        c = np.zeros((m, n), dtype)
        counters = None
        for _ in range(runs):
            rt = runtime_cls(board, **(runtime_kwargs or {})) \
                if runtime_cls else None
            counters = kernel.run(board, a, b, c, runtime=rt, trace=trace)
        results.append((counters.as_dict(), c.tobytes(),
                        _board_state(board, hw)))
    return results


def assert_pair_identical(pair):
    reference, traced = pair
    assert reference[0] == traced[0], "PerfCounters differ"
    assert reference[1] == traced[1], "outputs differ"
    assert reference[2] == traced[2], "board/accelerator state differs"


MATMUL_CONFIGS = [
    # version, size, flow — across the catalog's flow strategies.
    (1, 4, "Ns"),
    (2, 4, "As"),
    (2, 8, "Bs"),
    (3, 4, "Ns"),
    (3, 4, "As"),
    (3, 8, "Bs"),
    (3, 8, "Cs"),
]


class TestMatmulEquivalence:
    @pytest.mark.parametrize("version,size,flow", MATMUL_CONFIGS)
    def test_flows_and_tilings(self, version, size, flow):
        dims = size * 4
        assert_pair_identical(
            run_matmul_pair(version, size, flow, dims, dims, dims)
        )

    def test_rectangular(self):
        assert_pair_identical(run_matmul_pair(3, 8, "Cs", 32, 16, 64))

    def test_flexible_v4_tiles(self):
        assert_pair_identical(run_matmul_pair(
            4, 16, "Cs", 64, 32, 128, accel_size=(32, 16, 64)
        ))

    def test_float32(self):
        assert_pair_identical(run_matmul_pair(
            3, 8, "Cs", 32, 32, 32, dtype=np.float32
        ))

    def test_unspecialized_copies(self):
        assert_pair_identical(run_matmul_pair(
            3, 8, "Ns", 32, 32, 32, specialized=False
        ))

    def test_cpu_tiling_disabled(self):
        assert_pair_identical(run_matmul_pair(
            3, 16, "Ns", 64, 64, 64, cpu_tiling=False
        ))

    def test_manual_call_style(self):
        assert_pair_identical(run_matmul_pair(
            3, 8, "Ns", 32, 32, 32, runtime_cls=AxiRuntime,
            runtime_kwargs={"call_style": CALL_STYLE_MANUAL,
                            "copy_style": "specialized"},
        ))

    def test_manual_copy_style(self):
        assert_pair_identical(run_matmul_pair(
            3, 8, "Ns", 32, 32, 32, runtime_cls=AxiRuntime,
            runtime_kwargs={"copy_style": "manual"},
        ))

    def test_repeated_runs_share_one_board(self):
        """The second replay starts from warm caches and accel state."""
        assert_pair_identical(run_matmul_pair(
            3, 8, "As", 16, 16, 16, runs=3
        ))


class TestDoubleBuffering:
    @pytest.mark.parametrize("flow", ["Ns", "As", "Cs"])
    def test_double_buffered(self, flow):
        assert_pair_identical(run_matmul_pair(
            3, 8, flow, 32, 32, 32, runtime_cls=DoubleBufferedRuntime
        ))

    def test_blocking_runtime(self):
        assert_pair_identical(run_matmul_pair(
            3, 8, "Cs", 32, 32, 32, runtime_cls=AxiRuntime
        ))


def run_conv_pair(in_ch, f_hw, out_ch, out_hw, stride, seed=5):
    in_hw = (out_hw - 1) * stride + f_hw
    results = []
    for trace in (False, True):
        hw, info = make_conv_system(in_ch, f_hw)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info, kernel_cache=KernelCache()) \
            .compile_conv(1, in_ch, in_hw, out_ch, f_hw, stride)
        rng = np.random.default_rng(seed)
        image = rng.integers(-4, 4, (1, in_ch, in_hw, in_hw)) \
            .astype(np.int32)
        weights = rng.integers(-4, 4, (out_ch, in_ch, f_hw, f_hw)) \
            .astype(np.int32)
        oh = (in_hw - f_hw) // stride + 1
        out = np.zeros((1, out_ch, oh, oh), np.int32)
        counters = kernel.run(board, image, weights, out, trace=trace)
        results.append((counters.as_dict(), out.tobytes(),
                        _board_state(board, hw)))
    return results


class TestConvEquivalence:
    @pytest.mark.parametrize("in_ch,f_hw,out_ch,out_hw,stride", [
        (4, 3, 2, 6, 1),
        (8, 3, 3, 4, 2),
        (2, 1, 2, 4, 1),   # fHW == 1: the Fig. 16 regression geometry
    ])
    def test_conv_configs(self, in_ch, f_hw, out_ch, out_hw, stride):
        assert_pair_identical(
            run_conv_pair(in_ch, f_hw, out_ch, out_hw, stride)
        )


@settings(max_examples=10, deadline=None)
@given(
    tiles_m=st.integers(1, 4), tiles_n=st.integers(1, 4),
    tiles_k=st.integers(1, 4),
    version_flow=st.sampled_from([(1, "Ns"), (2, "As"), (2, "Bs"),
                                  (3, "Cs"), (3, "Ns"), (3, "Bs")]),
    seed=st.integers(0, 2 ** 16),
)
def test_property_replay_counters_bit_identical(tiles_m, tiles_n, tiles_k,
                                                version_flow, seed):
    version, flow = version_flow
    size = 4
    assert_pair_identical(run_matmul_pair(
        version, size, flow, size * tiles_m, size * tiles_n,
        size * tiles_k, seed=seed,
    ))


class TestFallbacks:
    def test_kill_switch_forces_per_tile(self, monkeypatch):
        from repro.execution import STAGE_TIMINGS

        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        before = STAGE_TIMINGS["replay_s"]
        pair = run_matmul_pair(3, 4, "Ns", 16, 16, 16)
        assert_pair_identical(pair)  # both ran per-tile: trivially equal
        assert STAGE_TIMINGS["replay_s"] == before

    def test_custom_runtime_subclass_falls_back(self):
        class EagerRuntime(AxiRuntime):
            def send_literal(self, literal, offset):
                return self.flush_send(super().send_literal(literal, offset))

        pair = run_matmul_pair(3, 4, "Ns", 16, 16, 16,
                               runtime_cls=EagerRuntime)
        assert_pair_identical(pair)

    def test_python_backends_match_per_tile(self, monkeypatch):
        """The no-compiler fallbacks are equally bit-identical."""
        import repro.soc._native as native_mod

        # Every consumer (stream decoders, metrics-plane classification
        # and timeline, OfflineLruSimulator) resolves native_lib lazily
        # from _native, so patching the module attribute disables all
        # C kernels at once.
        monkeypatch.setattr(native_mod, "native_lib", lambda: None)
        assert_pair_identical(run_matmul_pair(3, 8, "Cs", 32, 32, 32))
        assert_pair_identical(run_conv_pair(4, 3, 2, 6, 1))

    def test_send_after_receive_is_unsupported(self):
        """Replay snapshots all staged data up front, so a driver that
        re-sends data it received earlier in the run must be rejected
        at record time (read-after-write hazard)."""
        from repro.execution import TraceUnsupported, record_trace

        def driver(rt, arg0):
            rt.dma_init(0, 0, 4096, 0, 4096)
            sub = arg0.subview((0, 0), (4, 4))
            off = rt.send_memref(sub, rt.send_literal(0x22, 0))
            rt.flush_send(off)
            rt.recv_memref(sub, 0, accumulate=False)
            off = rt.send_memref(sub, rt.send_literal(0x22, 0))
            rt.flush_send(off)
            rt.recv_memref(sub, 0, accumulate=False)

        with pytest.raises(TraceUnsupported, match="read-after-write"):
            record_trace(driver, (((8, 8), (8, 1), 4, "int32"),))

    def test_wide_dtype_changes_nothing(self):
        """i64 data cannot stream through the 32-bit accelerators; the
        trace path must preserve per-tile behaviour exactly, whatever
        that behaviour is (here: an error from the stream decoder)."""
        outcomes = []
        for trace in (False, True):
            hw, info = make_matmul_system(3, 4, flow="Ns")
            board = make_pynq_z2()
            board.attach_accelerator(hw)
            kernel = AXI4MLIRCompiler(
                info, kernel_cache=KernelCache()
            ).compile_matmul(16, 16, 16)
            a = np.ones((16, 16), np.int64)
            b = np.ones((16, 16), np.int64)
            c = np.zeros((16, 16), np.int64)
            try:
                kernel.run(board, a, b, c, trace=trace)
                outcomes.append(("ok", c.tobytes()))
            except Exception as exc:
                outcomes.append((type(exc).__name__, str(exc)))
        assert outcomes[0] == outcomes[1]
