"""End-to-end correctness: compiled offload == numpy, across the catalog.

Includes property-based shape fuzzing (hypothesis) on the full
compile-emit-execute path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerators import make_conv_system, make_matmul_system
from repro.baselines.cpu_reference import cpu_conv
from repro.compiler import AXI4MLIRCompiler
from repro.soc import make_pynq_z2


def run_matmul(version, size, flow, m, n, k, rng, cpu_tiling=True,
               accel_size=None, dtype=np.int32):
    hw, info = make_matmul_system(version, size, flow=flow, dtype=dtype,
                                  accel_size=accel_size)
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    kernel = AXI4MLIRCompiler(
        info, enable_cpu_tiling=cpu_tiling
    ).compile_matmul(m, n, k)
    if np.issubdtype(np.dtype(dtype), np.integer):
        a = rng.integers(-7, 7, (m, k)).astype(dtype)
        b = rng.integers(-7, 7, (k, n)).astype(dtype)
    else:
        a = rng.standard_normal((m, k)).astype(dtype)
        b = rng.standard_normal((k, n)).astype(dtype)
    c = np.zeros((m, n), dtype)
    counters = kernel.run(board, a, b, c)
    return a, b, c, counters


ALL_CONFIGS = [
    (1, 4, "Ns"), (1, 8, "Ns"), (1, 16, "Ns"),
    (2, 4, "Ns"), (2, 8, "As"), (2, 16, "Bs"),
    (3, 4, "Ns"), (3, 8, "As"), (3, 8, "Bs"), (3, 8, "Cs"),
    (3, 16, "Cs"), (4, 16, "Cs"),
]


class TestMatMulCatalog:
    @pytest.mark.parametrize("version,size,flow", ALL_CONFIGS)
    def test_square_problems_correct(self, version, size, flow, rng):
        dims = size * 4
        a, b, c, _ = run_matmul(version, size, flow, dims, dims, dims, rng)
        assert np.array_equal(c, a @ b)

    @pytest.mark.parametrize("flow", ["Ns", "As", "Bs", "Cs"])
    def test_rectangular_problems_correct(self, flow, rng):
        a, b, c, _ = run_matmul(3, 8, flow, 32, 16, 64, rng)
        assert np.array_equal(c, a @ b)

    def test_initial_c_accumulated(self, rng):
        hw, info = make_matmul_system(3, 8, flow="Cs")
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info).compile_matmul(16, 16, 16)
        a = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        b = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        c0 = rng.integers(-7, 7, (16, 16)).astype(np.int32)
        c = c0.copy()
        kernel.run(board, a, b, c)
        assert np.array_equal(c, c0 + a @ b)

    def test_repeated_kernel_invocations(self, rng):
        # One board, two kernel executions: DMA initialized once per run
        # via the runtime, accelerator state must not leak across runs.
        hw, info = make_matmul_system(3, 8, flow="As")
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info).compile_matmul(16, 16, 16)
        for _ in range(2):
            a = rng.integers(-7, 7, (16, 16)).astype(np.int32)
            b = rng.integers(-7, 7, (16, 16)).astype(np.int32)
            c = np.zeros((16, 16), np.int32)
            kernel.run(board, a, b, c)
            assert np.array_equal(c, a @ b)

    def test_v4_flexible_tiles_correct(self, rng):
        a, b, c, _ = run_matmul(4, 16, "Cs", 64, 32, 128, rng,
                                accel_size=(32, 16, 64))
        assert np.array_equal(c, a @ b)

    def test_float32_end_to_end(self, rng):
        a, b, c, _ = run_matmul(3, 8, "Cs", 32, 32, 32, rng,
                                dtype=np.float32)
        assert np.allclose(c, a @ b, rtol=1e-4)

    def test_cpu_tiling_preserves_results(self, rng):
        with_tiling = run_matmul(3, 16, "Ns", 128, 128, 128, rng,
                                 cpu_tiling=True)
        without = run_matmul(3, 16, "Ns", 128, 128, 128,
                             np.random.default_rng(1234), cpu_tiling=False)
        assert np.array_equal(with_tiling[2], without[2])


@settings(max_examples=12, deadline=None)
@given(
    tiles_m=st.integers(1, 4), tiles_n=st.integers(1, 4),
    tiles_k=st.integers(1, 4),
    version_flow=st.sampled_from([(1, "Ns"), (2, "As"), (2, "Bs"),
                                  (3, "Cs"), (3, "Ns")]),
    seed=st.integers(0, 2 ** 16),
)
def test_property_any_divisible_shape_is_correct(tiles_m, tiles_n, tiles_k,
                                                 version_flow, seed):
    version, flow = version_flow
    size = 4
    rng = np.random.default_rng(seed)
    m, n, k = size * tiles_m, size * tiles_n, size * tiles_k
    a, b, c, _ = run_matmul(version, size, flow, m, n, k, rng)
    assert np.array_equal(c, a @ b)


@settings(max_examples=8, deadline=None)
@given(
    in_ch=st.sampled_from([2, 4, 8]),
    f_hw=st.sampled_from([1, 3]),
    out_ch=st.integers(1, 4),
    out_hw=st.integers(1, 4),
    stride=st.sampled_from([1, 2]),
    seed=st.integers(0, 2 ** 16),
)
def test_property_conv_offload_matches_reference(in_ch, f_hw, out_ch,
                                                 out_hw, stride, seed):
    rng = np.random.default_rng(seed)
    in_hw = (out_hw - 1) * stride + f_hw
    image = rng.integers(-4, 4, (1, in_ch, in_hw, in_hw)).astype(np.int32)
    weights = rng.integers(-4, 4, (out_ch, in_ch, f_hw, f_hw)).astype(
        np.int32
    )
    expected, _ = cpu_conv(make_pynq_z2(), image, weights, stride)

    hw, info = make_conv_system(in_ch, f_hw)
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    kernel = AXI4MLIRCompiler(info).compile_conv(
        1, in_ch, in_hw, out_ch, f_hw, stride
    )
    out = np.zeros_like(expected)
    kernel.run(board, image, weights, out)
    assert np.array_equal(out, expected)


class TestExamplesSmoke:
    def test_ir_and_codegen_tour_runs(self):
        """The tour example (including the textual-IR section) must stay
        runnable: it doubles as executable documentation."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        src = str(repo / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, str(repo / "examples" / "ir_and_codegen_tour.py")],
            capture_output=True, text=True, timeout=120, env=env,
            cwd=str(repo),
        )
        assert result.returncode == 0, (
            f"tour example failed\n--- stdout ---\n{result.stdout}"
            f"\n--- stderr ---\n{result.stderr}"
        )
        assert "print(parse(print(m))) == print(m) holds" in result.stdout
        assert "computes the same C = A @ B" in result.stdout
