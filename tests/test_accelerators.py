"""Tests for the accelerator behavioural models (Table I + conv)."""

import numpy as np
import pytest

from repro.accelerators import (
    CONV_LITERALS,
    ConvAccelerator,
    MATMUL_LITERALS,
    MatMulAccelerator,
    UnknownOpcodeError,
    make_conv_system,
    make_matmul_system,
    matmul_config_dict,
)
from repro.accelerators.matmul import VERSION_OPCODES
from repro.soc.timing import matmul_ops_per_cycle


def send_instruction(accel, literal, *arrays):
    words = [np.array([literal], dtype=np.int32)]
    words.extend(np.ascontiguousarray(a).reshape(-1).view(np.int32)
                 for a in arrays)
    accel.in_fifo.push(np.concatenate(words))


class TestMatMulAccelerator:
    def test_v1_single_instruction(self, rng):
        accel = MatMulAccelerator(4, version=1)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        send_instruction(accel, MATMUL_LITERALS["sAsBcCrC"], a, b)
        accel.process_stream()
        out = accel.out_fifo.pop(16).reshape(4, 4)
        assert np.array_equal(out, a @ b)

    def test_v3_split_opcodes(self, rng):
        accel = MatMulAccelerator(4, version=3)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        send_instruction(accel, MATMUL_LITERALS["sA"], a)
        send_instruction(accel, MATMUL_LITERALS["sB"], b)
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        accel.process_stream()
        assert np.array_equal(accel.out_fifo.pop(16).reshape(4, 4), a @ b)

    def test_v3_output_stationary_accumulates(self, rng):
        accel = MatMulAccelerator(4, version=3)
        a1 = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b1 = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        a2 = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b2 = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        for a, b in ((a1, b1), (a2, b2)):
            send_instruction(accel, MATMUL_LITERALS["sA"], a)
            send_instruction(accel, MATMUL_LITERALS["sB"], b)
            send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        accel.process_stream()
        expected = a1 @ b1 + a2 @ b2
        assert np.array_equal(accel.out_fifo.pop(16).reshape(4, 4), expected)

    def test_rc_clears_accumulator(self, rng):
        accel = MatMulAccelerator(4, version=3)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        send_instruction(accel, MATMUL_LITERALS["sA"], a)
        send_instruction(accel, MATMUL_LITERALS["sB"], b)
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        accel.process_stream()
        first = accel.out_fifo.pop(16).reshape(4, 4)
        second = accel.out_fifo.pop(16).reshape(4, 4)
        assert np.array_equal(first, a @ b)
        assert np.array_equal(second, a @ b)  # recomputed, not doubled

    def test_v2_combined_compute_receive(self, rng):
        accel = MatMulAccelerator(4, version=2)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        b = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        send_instruction(accel, MATMUL_LITERALS["sA"], a)
        send_instruction(accel, MATMUL_LITERALS["sB"], b)
        send_instruction(accel, MATMUL_LITERALS["cCrC"])
        accel.process_stream()
        assert np.array_equal(accel.out_fifo.pop(16).reshape(4, 4), a @ b)

    def test_version_isa_enforced(self):
        accel = MatMulAccelerator(4, version=1)
        send_instruction(accel, MATMUL_LITERALS["sA"],
                         np.zeros((4, 4), np.int32))
        with pytest.raises(UnknownOpcodeError):
            accel.process_stream()

    def test_version_opcode_sets(self):
        assert "cC" not in VERSION_OPCODES[2]
        assert "cfg" in VERSION_OPCODES[4]
        assert VERSION_OPCODES[1] == ("sAsBcCrC", "reset")

    def test_reset_clears_buffers(self, rng):
        accel = MatMulAccelerator(4, version=3)
        a = rng.integers(-5, 5, (4, 4)).astype(np.int32)
        send_instruction(accel, MATMUL_LITERALS["sA"], a)
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["reset"])
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        accel.process_stream()
        assert np.array_equal(accel.out_fifo.pop(16),
                              np.zeros(16, np.int32))

    def test_v4_configure_rectangular(self, rng):
        accel = MatMulAccelerator(16, version=4)
        send_instruction(accel, MATMUL_LITERALS["cfg"])
        accel.in_fifo.push(np.array([32, 16, 64], dtype=np.int32))
        a = rng.integers(-5, 5, (32, 64)).astype(np.int32)
        b = rng.integers(-5, 5, (64, 16)).astype(np.int32)
        send_instruction(accel, MATMUL_LITERALS["sA"], a)
        send_instruction(accel, MATMUL_LITERALS["sB"], b)
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        accel.process_stream()
        out = accel.out_fifo.pop(32 * 16).reshape(32, 16)
        assert np.array_equal(out, a @ b)

    def test_v4_quantum_enforced(self):
        accel = MatMulAccelerator(16, version=4)
        send_instruction(accel, MATMUL_LITERALS["cfg"])
        accel.in_fifo.push(np.array([20, 16, 16], dtype=np.int32))
        with pytest.raises(ValueError):
            accel.process_stream()

    def test_v4_capacity_enforced(self):
        accel = MatMulAccelerator(16, version=4)
        send_instruction(accel, MATMUL_LITERALS["cfg"])
        accel.in_fifo.push(np.array([128, 16, 128], dtype=np.int32))
        with pytest.raises(ValueError):
            accel.process_stream()

    def test_compute_cycles_follow_table1(self):
        for size in (4, 8, 16):
            accel = MatMulAccelerator(size, version=3)
            send_instruction(accel, MATMUL_LITERALS["cC"])
            cycles = accel.process_stream()
            assert cycles == pytest.approx(
                2 * size ** 3 / matmul_ops_per_cycle(size)
            )

    def test_float32_data(self, rng):
        accel = MatMulAccelerator(4, version=3, dtype=np.float32)
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        send_instruction(accel, MATMUL_LITERALS["sA"], a)
        send_instruction(accel, MATMUL_LITERALS["sB"], b)
        send_instruction(accel, MATMUL_LITERALS["cC"])
        send_instruction(accel, MATMUL_LITERALS["rC"])
        accel.process_stream()
        out = accel.out_fifo.pop(16, dtype=np.float32).reshape(4, 4)
        assert np.allclose(out, a @ b, rtol=1e-5)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            MatMulAccelerator(4, version=9)


class TestConvAccelerator:
    def drive(self, accel, image, weights):
        """Reference driver: configure, then per-oc filter + windows."""
        out_ch, in_ch, f_h, f_w = weights.shape
        _, _, in_h, in_w = image.shape
        out_h = in_h - f_h + 1
        out_w = in_w - f_w + 1
        accel.in_fifo.push(np.array(
            [CONV_LITERALS["cfg_fsize"], f_h, CONV_LITERALS["cfg_ic"], in_ch],
            dtype=np.int32,
        ))
        accel.process_stream()
        slices = []
        for oc in range(out_ch):
            send_instruction(accel, CONV_LITERALS["sF"], weights[oc])
            for oh in range(out_h):
                for ow in range(out_w):
                    window = image[0, :, oh:oh + f_h, ow:ow + f_w]
                    send_instruction(accel, CONV_LITERALS["sIcO"], window)
            send_instruction(accel, CONV_LITERALS["rO"])
            accel.process_stream()
            slices.append(
                accel.out_fifo.pop(out_h * out_w).reshape(out_h, out_w)
            )
        return np.stack(slices)

    def test_matches_reference_conv(self, rng):
        in_ch, f_hw, out_ch, in_hw = 4, 3, 2, 6
        accel = ConvAccelerator(max_ic=in_ch, max_fhw=f_hw)
        image = rng.integers(-4, 4, (1, in_ch, in_hw, in_hw)).astype(np.int32)
        weights = rng.integers(-4, 4, (out_ch, in_ch, f_hw, f_hw)).astype(
            np.int32
        )
        got = self.drive(accel, image, weights)
        from repro.baselines.cpu_reference import cpu_conv
        from repro.soc import make_pynq_z2
        expected, _ = cpu_conv(make_pynq_z2(), image, weights)
        assert np.array_equal(got, expected[0])

    def test_config_bounds_enforced(self):
        accel = ConvAccelerator(max_ic=8, max_fhw=3)
        accel.in_fifo.push(np.array(
            [CONV_LITERALS["cfg_ic"], 16], dtype=np.int32
        ))
        with pytest.raises(ValueError):
            accel.process_stream()

    def test_ro_without_windows_rejected(self):
        accel = ConvAccelerator()
        accel.in_fifo.push(np.array([CONV_LITERALS["rO"]], dtype=np.int32))
        with pytest.raises(RuntimeError):
            accel.process_stream()

    def test_slice_overflow_detected(self):
        accel = ConvAccelerator(max_ic=1, max_fhw=1, max_slice=2)
        accel.in_fifo.push(np.array(
            [CONV_LITERALS["cfg_fsize"], 1, CONV_LITERALS["cfg_ic"], 1],
            dtype=np.int32,
        ))
        send_instruction(accel, CONV_LITERALS["sF"],
                         np.ones((1, 1, 1), np.int32))
        for _ in range(3):
            send_instruction(accel, CONV_LITERALS["sIcO"],
                             np.ones((1, 1, 1), np.int32))
        with pytest.raises(RuntimeError):
            accel.process_stream()


class TestCatalog:
    @pytest.mark.parametrize("version,size", [(1, 4), (2, 8), (3, 16), (4, 16)])
    def test_config_parses(self, version, size):
        hardware, info = make_matmul_system(version, size)
        assert info.kernel == "linalg.matmul"
        assert hardware.size == size
        assert info.accel_size == (size, size, size)

    def test_flow_availability_matches_table1(self):
        assert matmul_config_dict(1, 4)["opcode_flow_map"].keys() == {"Ns"}
        assert set(matmul_config_dict(2, 8)["opcode_flow_map"]) == \
            {"Ns", "As", "Bs"}
        assert set(matmul_config_dict(3, 8)["opcode_flow_map"]) == \
            {"Ns", "As", "Bs", "Cs"}

    def test_invalid_flow_rejected(self):
        with pytest.raises(ValueError):
            matmul_config_dict(1, 4, flow="Cs")

    def test_v4_flexible_metadata(self):
        _, info = make_matmul_system(4, 16)
        assert info.flexible_size
        assert info.flex_quantum == 16
        assert info.buffer_capacity == 16 * 16 * 16

    def test_conv_system(self):
        hardware, info = make_conv_system(64, 3)
        assert info.kernel == "linalg.conv_2d_nchw_fchw"
        assert info.loop_permutation == ("n", "f", "oh", "ow")
        assert hardware.max_ic == 64
