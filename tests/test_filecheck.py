"""Golden-file pipeline tests: run every ``tests/filecheck/*.mlir``
fixture through its ``// RUN:`` pipeline and match ``// CHECK:``
directives against the printed output.

Also unit-tests the miniature FileCheck engine itself, and guards
against silent test-discovery regressions: the suite fails if fixtures
on disk stop being collected.
"""

from pathlib import Path

import pytest

from support.filecheck import (
    CheckFailure,
    build_accelerator_info,
    compile_check_pattern,
    run_filecheck,
    run_fixture,
)

FIXTURE_DIR = Path(__file__).resolve().parent / "filecheck"
FIXTURES = sorted(FIXTURE_DIR.glob("*.mlir"))

#: The pipeline fixtures this PR ships with; grows with the suite.
MIN_FIXTURES = 10


def test_every_fixture_on_disk_is_collected():
    """Each .mlir file must appear exactly once in the parametrization."""
    assert len(FIXTURES) >= MIN_FIXTURES, (
        f"only {len(FIXTURES)} fixtures collected from {FIXTURE_DIR}; "
        f"expected at least {MIN_FIXTURES}"
    )
    names = [p.name for p in FIXTURES]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture(path):
    run_fixture(path)


class TestCheckEngine:
    def test_plain_check_matches_in_order(self):
        run_filecheck("a\nb\nc", "// CHECK: a\n// CHECK: c")

    def test_out_of_order_fails(self):
        with pytest.raises(CheckFailure, match="not"):
            run_filecheck("a\nb", "// CHECK: b\n// CHECK: a")

    def test_check_next_requires_adjacency(self):
        run_filecheck("a\nb", "// CHECK: a\n// CHECK-NEXT: b")
        with pytest.raises(CheckFailure, match="CHECK-NEXT"):
            run_filecheck("a\nx\nb", "// CHECK: a\n// CHECK-NEXT: b")

    def test_check_not_scans_the_gap(self):
        run_filecheck("a\nx\nb", "// CHECK: a\n// CHECK-NOT: y\n// CHECK: b")
        with pytest.raises(CheckFailure, match="CHECK-NOT"):
            run_filecheck("a\nx\nb",
                          "// CHECK: a\n// CHECK-NOT: x\n// CHECK: b")

    def test_trailing_check_not_scans_to_eof(self):
        with pytest.raises(CheckFailure, match="CHECK-NOT"):
            run_filecheck("a\nz", "// CHECK: a\n// CHECK-NOT: z")

    def test_check_same_stays_on_the_matched_line(self):
        run_filecheck("a b c\nd", "// CHECK: a\n// CHECK-SAME: c")
        with pytest.raises(CheckFailure, match="CHECK-SAME"):
            run_filecheck("a b\nc", "// CHECK: a\n// CHECK-SAME: c")

    def test_check_same_advances_within_the_line(self):
        with pytest.raises(CheckFailure, match="CHECK-SAME"):
            run_filecheck("b a", "// CHECK: a\n// CHECK-SAME: b")

    def test_regex_blocks(self):
        pattern = compile_check_pattern("step %{{[0-9]+}} {")
        assert pattern.search("scf.for %1 = %0 to %9 step %42 {")
        assert not pattern.search("step %x {")

    def test_no_checks_is_an_error(self):
        with pytest.raises(CheckFailure, match="no CHECK"):
            run_filecheck("a", "// just a comment")

    def test_accel_directive_builders(self):
        info = build_accelerator_info("matmul version=3 size=4 flow=As")
        assert info.kernel == "linalg.matmul"
        assert info.accel_size == (4, 4, 4)
        conv = build_accelerator_info("conv ic=4 fhw=3")
        assert conv.kernel == "linalg.conv_2d_nchw_fchw"
        with pytest.raises(CheckFailure, match="unknown ACCEL"):
            build_accelerator_info("fft size=4")
