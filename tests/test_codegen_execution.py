"""Tests for the Python emitter and the reference interpreter, including
the equivalence of both execution paths (results AND perf counters)."""

import numpy as np
import pytest

from repro.accelerators import MatMulAccelerator, make_matmul_system
from repro.codegen import compile_host_function, emit_function_source
from repro.codegen.python_emitter import EmitError, PythonEmitter
from repro.compiler import AXI4MLIRCompiler, build_matmul_module
from repro.dialects import arith, func, scf
from repro.execution import interpret_function
from repro.execution.interpreter import Interpreter, InterpreterError
from repro.ir import I32, INDEX, Module, make_func
from repro.ir.core import Operation
from repro.runtime import AxiRuntime
from repro.soc import make_pynq_z2


def make_kernel(version=3, size=4, flow="As", dims=16):
    hw, info = make_matmul_system(version, size, flow=flow)
    kernel = AXI4MLIRCompiler(info, enable_cpu_tiling=False).compile_matmul(
        dims, dims, dims
    )
    return hw, kernel


class TestEmitter:
    def test_source_structure(self):
        _, kernel = make_kernel()
        source = kernel.source
        assert source.startswith("def matmul_call(rt, arg0, arg1, arg2):")
        # Library calls are bound to locals at entry and called bare.
        assert "dma_init = rt.dma_init" in source
        assert "recv_memref = rt.recv_memref" in source
        assert "flush_send = rt.flush_send" in source
        assert "for m in range(" in source
        assert "for k in range(" in source
        assert "for n in range(" in source
        assert "recv_memref(" in source
        assert "accumulate=True" in source
        assert "flush_send(" in source

    def test_constants_and_sizes_hoisted(self):
        """Loop-invariant constants live in the prelude, not the body."""
        _, kernel = make_kernel()
        lines = kernel.source.splitlines()
        first_loop = next(i for i, text in enumerate(lines)
                          if text.lstrip().startswith("for "))
        body = lines[first_loop:]
        assert not any(ln.lstrip().startswith("c") and "= " in ln
                       and ln.split("= ")[-1].lstrip("-").isdigit()
                       for ln in body), "constant assignment inside a loop"
        assert any(ln.strip().startswith("sz0 = (") for ln in lines)

    def test_schedule_table_counts_driver_events(self):
        from repro.codegen import schedule_event_count
        from repro.execution import TraceRecorder

        _, kernel = make_kernel()
        expected = schedule_event_count(kernel.schedule_table)
        recorder = TraceRecorder(tuple(
            ((16, 16), (16, 1), 4, "int32") for _ in range(3)
        ))
        kernel.entry_point(recorder, *recorder.make_args())
        assert expected == len(recorder.events)

    def test_loop_variables_named_after_dims(self):
        _, kernel = make_kernel(flow="Cs")
        # Cs order is (m, n, k).
        source = kernel.source
        assert source.index("for m in") < source.index("for n in") \
            < source.index("for k in")

    def test_duplicate_iv_names_disambiguated(self):
        module = Module()
        f = module.add_function(make_func("dup", []))
        b = func.builder_at_entry(f)
        zero = arith.index_constant(b, 0)
        four = arith.index_constant(b, 4)
        one = arith.index_constant(b, 1)
        with scf.build_for(b, zero, four, one, "i"):
            with scf.build_for(b, zero, four, one, "i"):
                pass
        func.ret(b)
        source = emit_function_source(f)
        assert "for i in range" in source
        assert "for i2 in range" in source

    def test_emitted_code_is_executable_python(self):
        _, kernel = make_kernel()
        compiled, text = compile_host_function(kernel.func_op)
        assert callable(compiled)
        assert text == kernel.source

    def test_unsupported_op_reported(self):
        module = Module()
        f = module.add_function(make_func("bad", []))
        b = func.builder_at_entry(f)
        b.create("weird.op")
        func.ret(b)
        with pytest.raises(EmitError, match="weird.op"):
            emit_function_source(f)

    def test_non_func_rejected(self):
        with pytest.raises(EmitError):
            PythonEmitter(Operation("test.notafunc"))


class TestInterpreter:
    def test_scalar_arithmetic(self):
        module = Module()
        f = module.add_function(make_func("calc", []))
        b = func.builder_at_entry(f)
        three = arith.constant(b, 3, I32)
        four = arith.constant(b, 4, I32)
        total = arith.addi(b, three, four)
        product = arith.muli(b, total, four)
        func.ret(b, [product])
        assert interpret_function(f, []) == [28]

    def test_loop_semantics(self):
        module = Module()
        f = module.add_function(make_func("loop", []))
        b = func.builder_at_entry(f)
        zero = arith.index_constant(b, 0)
        ten = arith.index_constant(b, 10)
        three = arith.index_constant(b, 3)
        body_counter = []
        with scf.build_for(b, zero, ten, three):
            pass
        func.ret(b)
        interp = Interpreter()
        loop = f.regions[0].entry_block.operations[-2]
        original = interp._op_scf_for
        iterations = []

        def counting(op):
            iterations.append(op)
            return original(op)

        interp._op_scf_for = counting
        interp.run(f, [])
        del body_counter
        assert len(iterations) == 1  # ceil(10/3) iterations inside

    def test_zero_step_rejected(self):
        module = Module()
        f = module.add_function(make_func("bad", []))
        b = func.builder_at_entry(f)
        zero = arith.index_constant(b, 0)
        with scf.build_for(b, zero, zero, zero):
            pass
        func.ret(b)
        with pytest.raises(InterpreterError):
            interpret_function(f, [])

    def test_argument_arity_checked(self):
        module = Module()
        f = module.add_function(make_func("two", [INDEX, INDEX]))
        with pytest.raises(InterpreterError):
            interpret_function(f, [1])

    def test_accel_ops_require_runtime(self):
        _, kernel = make_kernel()
        with pytest.raises(InterpreterError):
            interpret_function(kernel.func_op, [None, None, None],
                               runtime=None)

    def test_functional_linalg_matmul_fallback(self, rng):
        module = build_matmul_module(8, 8, 8, I32)
        from repro.transforms import GeneralizeNamedOpsPass
        GeneralizeNamedOpsPass().run(module)
        a = rng.integers(-5, 5, (8, 8)).astype(np.int32)
        b = rng.integers(-5, 5, (8, 8)).astype(np.int32)
        c = np.zeros((8, 8), np.int32)
        from repro.runtime import MemRefDescriptor
        args = [MemRefDescriptor.from_numpy(x) for x in (a, b, c)]
        interpret_function(module.lookup("matmul_call"), args)
        assert np.array_equal(args[2].view(), a @ b)


class TestEmitterInterpreterEquivalence:
    @pytest.mark.parametrize("version,flow", [
        (1, "Ns"), (2, "As"), (3, "Cs"), (3, "Ns"),
    ])
    def test_results_and_counters_agree(self, version, flow, rng):
        dims, size = 16, 4
        a = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
        b = rng.integers(-5, 5, (dims, dims)).astype(np.int32)

        hw1, kernel = make_kernel(version, size, flow, dims)
        board1 = make_pynq_z2()
        board1.attach_accelerator(hw1)
        c1 = np.zeros((dims, dims), np.int32)
        emitted = kernel.run(board1, a, b, c1)

        hw2 = MatMulAccelerator(size, version)
        board2 = make_pynq_z2()
        board2.attach_accelerator(hw2)
        c2 = np.zeros((dims, dims), np.int32)
        interpreted = kernel.run_interpreted(board2, a, b, c2)

        assert np.array_equal(c1, a @ b)
        assert np.array_equal(c2, c1)
        assert emitted.cache_references == pytest.approx(
            interpreted.cache_references
        )
        assert emitted.branch_instructions == pytest.approx(
            interpreted.branch_instructions
        )
        assert emitted.cpu_cycles == pytest.approx(interpreted.cpu_cycles)
        assert emitted.task_clock_ms() == pytest.approx(
            interpreted.task_clock_ms()
        )
        assert emitted.dma_transactions == interpreted.dma_transactions
