"""Tests for the SSA core: values, operations, blocks, use-def chains."""

import pytest

from repro.ir import (
    Builder,
    InsertionPoint,
    IRError,
    Module,
    Operation,
    VerificationError,
    attr,
    make_func,
    verify,
)
from repro.ir.attributes import IntegerAttr, StringAttr, unwrap
from repro.ir.core import func_entry_block
from repro.ir.types import F32, I32, INDEX, MemRefType
from repro.dialects import arith, func, scf


def empty_func(name="f", num_args=0):
    return make_func(name, [INDEX] * num_args)


class TestOperation:
    def test_results_created_from_types(self):
        op = Operation("test.op", result_types=[I32, F32])
        assert [str(r.type) for r in op.results] == ["i32", "f32"]

    def test_operand_use_recorded(self):
        producer = Operation("test.def", result_types=[I32])
        consumer = Operation("test.use", operands=[producer.results[0]])
        assert (consumer, 0) in producer.results[0].uses

    def test_replace_all_uses(self):
        a = Operation("test.a", result_types=[I32])
        b = Operation("test.b", result_types=[I32])
        user = Operation("test.use", operands=[a.results[0], a.results[0]])
        a.results[0].replace_all_uses_with(b.results[0])
        assert user.operands == (b.results[0], b.results[0])
        assert not a.results[0].has_uses()

    def test_erase_detaches_and_clears_uses(self):
        f = empty_func()
        block = func_entry_block(f)
        b = Builder(InsertionPoint.at_end(block))
        c = arith.index_constant(b, 1)
        add = b.create("arith.addi", operands=[c, c], result_types=[INDEX])
        add.erase()
        assert add.parent is None
        assert not c.uses

    def test_erase_with_live_uses_rejected(self):
        f = empty_func()
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        c = arith.index_constant(b, 1)
        b.create("test.use", operands=[c])
        with pytest.raises(IRError):
            c.owner.erase()

    def test_single_result_accessor(self):
        op = Operation("test.op", result_types=[I32])
        assert op.result is op.results[0]
        two = Operation("test.two", result_types=[I32, I32])
        with pytest.raises(IRError):
            _ = two.result

    def test_move_before_and_after(self):
        f = empty_func()
        block = func_entry_block(f)
        b = Builder(InsertionPoint.at_end(block))
        first = b.create("test.a")
        second = b.create("test.b")
        second.move_before(first)
        assert [op.name for op in block] == ["test.b", "test.a"]
        second.move_after(first)
        assert [op.name for op in block] == ["test.a", "test.b"]

    def test_attributes_normalized(self):
        op = Operation("test.op", attributes={"count": 3, "name": "x"})
        assert isinstance(op.get_attr("count"), IntegerAttr)
        assert isinstance(op.get_attr("name"), StringAttr)
        assert unwrap(op.get_attr("count")) == 3

    def test_walk_pre_and_post_order(self):
        f = empty_func()
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        zero = arith.index_constant(b, 0)
        one = arith.index_constant(b, 1)
        with scf.build_for(b, zero, one, one):
            b.create("test.inner")
        names_pre = [op.name for op in f.walk()]
        assert names_pre.index("scf.for") < names_pre.index("test.inner")
        names_post = [op.name for op in f.walk(post_order=True)]
        assert names_post.index("test.inner") < names_post.index("scf.for")

    def test_clone_remaps_nested_values(self):
        f = empty_func()
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        zero = arith.index_constant(b, 0)
        four = arith.index_constant(b, 4)
        with scf.build_for(b, zero, four, four) as iv:
            b.create("test.use", operands=[iv])
        loop = func_entry_block(f).operations[-1]
        clone = loop.clone()
        cloned_use = clone.regions[0].entry_block.operations[0]
        assert cloned_use.operands[0] is clone.regions[0].entry_block.arguments[0]
        # The original is untouched.
        original_use = loop.regions[0].entry_block.operations[0]
        assert original_use.operands[0] is loop.regions[0].entry_block.arguments[0]

    def test_set_operand_bounds_checked(self):
        a = Operation("test.a", result_types=[I32])
        user = Operation("test.use", operands=[a.results[0]])
        with pytest.raises(IRError):
            user.set_operand(3, a.results[0])


class TestBlockRegion:
    def test_append_rejects_attached(self):
        f1 = empty_func("f1")
        f2 = empty_func("f2")
        op = Operation("test.op")
        func_entry_block(f1).append(op)
        with pytest.raises(IRError):
            func_entry_block(f2).append(op)

    def test_add_argument(self):
        f = empty_func()
        block = func_entry_block(f)
        argument = block.add_argument(I32)
        assert argument.index == 0
        assert argument.owner is block


class TestModule:
    def test_lookup_by_symbol(self):
        module = Module()
        f = make_func("target", [])
        module.add_function(f)
        assert module.lookup("target") is f
        with pytest.raises(KeyError):
            module.lookup("missing")

    def test_add_function_type_checked(self):
        module = Module()
        with pytest.raises(IRError):
            module.add_function(Operation("test.notafunc"))

    def test_functions_listed(self):
        module = Module()
        module.add_function(make_func("a", []))
        module.add_function(make_func("b", []))
        assert [func.func_name(f) for f in module.functions()] == ["a", "b"]


class TestVerifier:
    def test_valid_module_verifies(self):
        module = Module()
        f = module.add_function(make_func("ok", [INDEX]))
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        func.ret(b)
        verify(module.op)

    def test_use_before_def_detected(self):
        module = Module()
        f = module.add_function(make_func("bad", []))
        block = func_entry_block(f)
        b = Builder(InsertionPoint.at_end(block))
        const = arith.index_constant(b, 1)
        user = b.create("test.use", operands=[const])
        func.ret(b)
        # Move the constant after its user: now a use-before-def.
        const_op = const.owner
        const_op.move_after(user)
        with pytest.raises(VerificationError):
            verify(module.op)

    def test_terminator_position_enforced(self):
        module = Module()
        f = module.add_function(make_func("bad", []))
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        func.ret(b)
        func_entry_block(f).append(Operation("test.after"))
        with pytest.raises(VerificationError):
            verify(module.op)

    def test_values_from_enclosing_region_visible(self):
        module = Module()
        f = module.add_function(make_func("nest", []))
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        zero = arith.index_constant(b, 0)
        one = arith.index_constant(b, 1)
        with scf.build_for(b, zero, one, one):
            b.create("test.use", operands=[zero])
        func.ret(b)
        verify(module.op)


class TestAttrHelper:
    def test_round_trip(self):
        value = {"a": 1, "b": [True, "x"], "c": 2.5}
        assert unwrap(attr(value)) == value

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            attr(object())


class TestVerifierHardening:
    """Malformed attribute dictionaries surfaced by parser-built modules.

    Each case is written as textual IR so the diagnostics can be checked
    end to end: the error must name the op *and* its source location.
    """

    def _parse_verified(self, body: str):
        from repro.ir import parse_module

        text = ("module {\n"
                "  func.func @f(%arg0: memref<8x8xi32>) {\n"
                f"{body}"
                '    "func.return"()\n'
                "  }\n"
                "}")
        return parse_module(text, filename="hardening.mlir", verify=True)

    def test_subview_missing_static_strides(self):
        with pytest.raises(VerificationError,
                           match=r"memref\.subview \(at hardening\.mlir:4\):"
                                 r" static_strides"):
            self._parse_verified(
                '    %0 = "arith.constant"() {value = 0} : () -> (index)\n'
                '    %1 = "memref.subview"(%arg0, %0, %0) '
                "{static_sizes = [4, 4]} : (memref<8x8xi32>, index, index)"
                " -> (memref<4x4xi32, strided<[8, 1], offset: ?>>)\n"
            )

    def test_subview_wrong_rank_static_strides(self):
        with pytest.raises(VerificationError,
                           match=r"memref\.subview \(at hardening\.mlir:4\):"
                                 r" static_strides"):
            self._parse_verified(
                '    %0 = "arith.constant"() {value = 0} : () -> (index)\n'
                '    %1 = "memref.subview"(%arg0, %0, %0) '
                "{static_sizes = [4, 4], static_strides = [1]} : "
                "(memref<8x8xi32>, index, index)"
                " -> (memref<4x4xi32, strided<[8, 1], offset: ?>>)\n"
            )

    def test_generic_missing_operand_segment_sizes(self):
        with pytest.raises(VerificationError,
                           match=r"linalg\.matmul \(at hardening\.mlir:3\):"
                                 r" operandSegmentSizes"):
            self._parse_verified(
                '    "linalg.matmul"(%arg0, %arg0, %arg0) : '
                "(memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)\n"
            )

    def test_generic_segment_sizes_do_not_sum(self):
        with pytest.raises(VerificationError,
                           match=r"linalg\.matmul \(at hardening\.mlir:3\):"
                                 r" operandSegmentSizes \[2, 5\]"):
            self._parse_verified(
                '    "linalg.matmul"(%arg0, %arg0, %arg0) '
                "{operandSegmentSizes = [2, 5]} : "
                "(memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)\n"
            )

    def test_generic_indexing_map_count_mismatch(self):
        from repro.dialects import linalg
        from repro.ir import Module, make_func, verify as _

        module = Module()
        f = module.add_function(make_func(
            "g", [MemRefType((8, 8), I32)] * 3
        ))
        b = Builder(InsertionPoint.at_end(func_entry_block(f)))
        a, rhs, out = func_entry_block(f).arguments
        op = linalg.generic(b, linalg.matmul_maps(),
                            linalg.MATMUL_ITERATORS, [a, rhs], [out])
        maps = op.get_attr("indexing_maps")
        op.set_attr("indexing_maps", type(maps)(maps.elements[:2]))
        func.ret(b)
        with pytest.raises(VerificationError,
                           match=r"linalg\.generic: 2 indexing maps for "
                                 r"3 operands"):
            verify(module.op)

    def test_dim_index_out_of_range(self):
        with pytest.raises(VerificationError,
                           match=r"memref\.dim \(at hardening\.mlir:3\): "
                                 r"index 5 out of range"):
            self._parse_verified(
                '    %0 = "memref.dim"(%arg0) {index = 5} : '
                "(memref<8x8xi32>) -> (index)\n"
            )

    def test_dim_index_missing(self):
        with pytest.raises(VerificationError,
                           match=r"memref\.dim \(at hardening\.mlir:3\): "
                                 r"requires an integer 'index'"):
            self._parse_verified(
                '    %0 = "memref.dim"(%arg0) : '
                "(memref<8x8xi32>) -> (index)\n"
            )

    def test_constant_value_kind_must_match_result(self):
        with pytest.raises(VerificationError,
                           match=r"arith\.constant \(at hardening\.mlir:3\):"
                                 r" 'value' must be an integer"):
            self._parse_verified(
                '    %0 = "arith.constant"() {value = "NaN"} : '
                "() -> (i32)\n"
            )

    def test_programmatic_ops_report_without_location(self):
        op = Operation("memref.dim", result_types=[INDEX])
        buffer = Operation("memref.alloc",
                           result_types=[MemRefType((4,), I32)])
        use = Operation("memref.dim", operands=[buffer.results[0]],
                        result_types=[INDEX])
        del op
        with pytest.raises(VerificationError, match=r"^memref\.dim: "):
            verify(use)
