"""Tests for non-blocking transfers and the double-buffered runtime
(the paper's Sec. V ongoing-work features)."""

import numpy as np
import pytest

from repro.accelerators import MatMulAccelerator, make_matmul_system
from repro.compiler import AXI4MLIRCompiler
from repro.runtime import AxiRuntime, DoubleBufferedRuntime
from repro.soc import make_pynq_z2


class TestNonBlockingSends:
    def make(self):
        board = make_pynq_z2()
        board.attach_accelerator(MatMulAccelerator(8, version=3))
        rt = AxiRuntime(board)
        rt.dma_init(0, 0, 0x10000, 0, 0x10000)
        return board, rt

    def test_nonblocking_send_does_not_advance_past_start(self):
        board, rt = self.make()
        offset = rt.send_literal(0xFF, 0)
        clock_before = board.clock
        rt.flush_send_nonblocking(offset)
        # Only the MMIO programming cost elapsed, not the transfer.
        elapsed = board.clock - clock_before
        programming = board.timing.dma_start_cycles / board.timing.cpu_freq_hz
        assert elapsed == pytest.approx(programming)
        assert board.dma_busy_until > board.clock

    def test_wait_sends_synchronizes(self):
        board, rt = self.make()
        offset = rt.send_literal(0xFF, 0)
        rt.flush_send_nonblocking(offset)
        rt.wait_sends()
        assert board.clock >= board.dma_busy_until

    def test_back_to_back_sends_serialize_on_the_engine(self):
        board, rt = self.make()
        a = np.ones((8, 8), np.int32)
        desc = rt.make_memref(a, "A")
        first = rt.send_memref(desc, rt.send_literal(0x22, 0))
        rt.flush_send_nonblocking(first)
        first_done = board.dma_busy_until
        second = rt.send_memref(desc, rt.send_literal(0x22, 0))
        rt.flush_send_nonblocking(second)
        assert board.dma_busy_until > first_done

    def test_counters_still_track_traffic(self):
        board, rt = self.make()
        offset = rt.send_literal(0xFF, 0)
        rt.flush_send_nonblocking(offset)
        assert board.counters.dma_bytes_to_accel == 4
        assert board.counters.dma_transactions == 1


class TestDoubleBufferedRuntime:
    def run_kernel(self, runtime_cls, dims=64, flow="Cs"):
        hw, info = make_matmul_system(3, 16, flow=flow)
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info).compile_matmul(dims, dims, dims)
        rng = np.random.default_rng(7)
        a = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
        b = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
        c = np.zeros((dims, dims), np.int32)
        runtime = runtime_cls(board) if runtime_cls else None
        counters = kernel.run(board, a, b, c, runtime=runtime)
        assert np.array_equal(c, a @ b)
        return counters

    def test_results_identical_to_blocking(self):
        self.run_kernel(DoubleBufferedRuntime)  # asserts correctness

    @pytest.mark.parametrize("flow", ["Ns", "As", "Cs"])
    def test_faster_than_blocking(self, flow):
        blocking = self.run_kernel(None, flow=flow)
        buffered = self.run_kernel(DoubleBufferedRuntime, flow=flow)
        assert buffered.task_clock_ms() < blocking.task_clock_ms()
        assert buffered.stall_cycles < blocking.stall_cycles

    def test_same_dma_traffic(self):
        blocking = self.run_kernel(None)
        buffered = self.run_kernel(DoubleBufferedRuntime)
        assert buffered.dma_bytes_to_accel == blocking.dma_bytes_to_accel
        assert buffered.dma_bytes_from_accel == blocking.dma_bytes_from_accel
        assert buffered.dma_transactions == blocking.dma_transactions
