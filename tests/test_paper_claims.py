"""The paper's headline claims, asserted as test invariants.

These tests run the same harnesses the benchmarks use (at reduced scale)
and check the *shape* of every result the paper reports: who wins, in
what order, and roughly by how much.  EXPERIMENTS.md records the
paper-vs-measured numbers.
"""

import pytest

from repro.experiments import (
    fig10_rows,
    fig11_rows,
    fig12_rows,
    fig13_rows,
    fig14_rows,
    fig16_rows,
    fig17_rows,
    measure_generated_matmul,
    measure_manual_matmul,
    table1_rows,
)


def _by(rows, **filters):
    out = [r for r in rows
           if all(r.get(k) == v for k, v in filters.items())]
    assert out, f"no rows matching {filters}"
    return out


class TestTable1:
    def test_catalog_matches_paper(self):
        rows = table1_rows()
        v1 = _by(rows, type="v1", size=8)[0]
        assert v1["possible_reuse"] == "Nothing"
        assert v1["ops_per_cycle"] == 60
        v4 = _by(rows, type="v4", size=16)[0]
        assert "flex" in v4["possible_reuse"]
        assert v4["ops_per_cycle"] == 112


class TestFig10Relevance:
    """Offload only pays off for dims >= 64 and accel size >= 8."""

    @pytest.fixture(scope="class")
    def rows(self):
        return fig10_rows()

    def cpu_ms(self, rows, dims):
        return _by(rows, dims=dims, accel_version="NONE")[0]["task_clock_ms"]

    def accel_ms(self, rows, dims, size):
        return _by(rows, dims=dims, accel_size=size,
                   accel_version="v1")[0]["task_clock_ms"]

    @pytest.mark.parametrize("dims", [16, 32])
    def test_cpu_wins_small_problems(self, rows, dims):
        for size in (4, 8, 16):
            assert self.cpu_ms(rows, dims) < self.accel_ms(rows, dims, size)

    @pytest.mark.parametrize("dims", [64, 128])
    def test_size4_never_relevant(self, rows, dims):
        assert self.accel_ms(rows, dims, 4) > self.cpu_ms(rows, dims)

    def test_size16_relevant_from_dims64(self, rows):
        assert self.accel_ms(rows, 64, 16) < self.cpu_ms(rows, 64)

    def test_size8_relevant_at_dims128(self, rows):
        assert self.accel_ms(rows, 128, 8) < self.cpu_ms(rows, 128)
        # ... and roughly at parity at the dims == 64 threshold.
        ratio = self.accel_ms(rows, 64, 8) / self.cpu_ms(rows, 64)
        assert 0.8 <= ratio <= 1.2


class TestFig11UnoptimizedFlows:
    """Before the copy optimization, generated Ns loses to manual Ns."""

    @pytest.fixture(scope="class")
    def rows(self):
        return fig11_rows()

    def test_generated_ns_slower_than_manual(self, rows):
        for dims in (64, 128):
            for size in (8, 16):
                manual = _by(rows, dims=dims, accel_size=size,
                             accel_version="v3", impl="cpp_MANUAL",
                             flow="Ns")[0]
                generated = _by(rows, dims=dims, accel_size=size,
                                accel_version="v3", impl="mlir_AXI4MLIR",
                                flow="Ns")[0]
                assert generated["task_clock_ms"] > manual["task_clock_ms"]

    def test_cs_improves_over_generated_ns(self, rows):
        for dims in (64, 128):
            v3 = _by(rows, dims=dims, accel_size=16, accel_version="v3",
                     impl="mlir_AXI4MLIR")
            by_flow = {r["flow"]: r["task_clock_ms"] for r in v3}
            assert by_flow["Cs"] < by_flow["Ns"]


class TestFig12CopyOptimization:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig12_rows()

    def test_unoptimized_copies_cost_more_than_manual(self, rows):
        manual = _by(rows, panel="12a(unoptimized)", impl="cpp_MANUAL")[0]
        generated = _by(rows, panel="12a(unoptimized)",
                        impl="mlir_AXI4MLIR", flow="Ns")[0]
        for metric in ("branch-instructions", "cache-references",
                       "task-clock"):
            assert generated[metric] > manual[metric]

    def test_optimized_beats_manual_on_all_metrics(self, rows):
        manual = _by(rows, panel="12b(optimized)", impl="cpp_MANUAL")[0]
        for flow in ("Ns", "As", "Bs", "Cs"):
            generated = _by(rows, panel="12b(optimized)",
                            impl="mlir_AXI4MLIR", flow=flow)[0]
            for metric in ("branch-instructions", "cache-references",
                           "task-clock"):
                assert generated[metric] < manual[metric]

    def test_all_runs_beat_cpu(self, rows):
        for row in rows:
            assert row["task-clock"] < 1.0


class TestFig13Headline:
    """AXI4MLIR beats the matched manual driver in every configuration."""

    @pytest.fixture(scope="class")
    def rows(self):
        return fig13_rows()

    def test_generated_wins_everywhere(self, rows):
        for row in rows:
            assert row["speedup"] > 1.0, row

    def test_average_speedup_in_paper_band(self, rows):
        speedups = [r["speedup"] for r in rows]
        mean = sum(speedups) / len(speedups)
        # Paper: 1.18x average, 1.65x max.
        assert 1.05 <= mean <= 1.45
        assert max(speedups) <= 2.0

    def test_cache_reference_reductions(self, rows):
        # Paper: up to 56% fewer cache references.
        reductions = [r["cache_ref_reduction"] for r in rows]
        assert max(reductions) >= 0.30
        assert sum(r > 0 for r in reductions) / len(reductions) >= 0.9


class TestFig14FlexibleTiling:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig14_rows()

    def test_best_beats_every_square_strategy(self, rows):
        for row in rows:
            squares = [row["As-squareTile_ms"], row["Bs-squareTile_ms"],
                       row["Cs-squareTile_ms"]]
            assert row["Best_ms"] <= min(squares) * 1.001

    def test_best_square_flow_varies_with_permutation(self, rows):
        winners = set()
        for row in rows:
            squares = {
                "As": row["As-squareTile_ms"],
                "Bs": row["Bs-squareTile_ms"],
                "Cs": row["Cs-squareTile_ms"],
            }
            winners.add(min(squares, key=squares.get))
        assert len(winners) >= 2  # no single square flow dominates

    def test_best_uses_rectangular_tiles(self, rows):
        assert any(
            len({part for part in row["Best_config"].split()[1:]}) > 1
            for row in rows
        )


class TestFig16ResNet:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig16_rows()

    def test_wins_majority_of_layers(self, rows):
        wins = [r for r in rows if r["speedup"] > 1.0]
        assert len(wins) >= 7  # paper: 10 of 11

    def test_fhw1_layers_regress(self, rows):
        # The copy specialization cannot apply to fHW == 1 windows
        # (single-element rows): those layers lose, like the paper's
        # 56_64_1_128_2.
        regression = _by(rows, layer="56_64_1_128_2")[0]
        assert regression["speedup"] < 1.0
        for row in rows:
            f_hw = int(row["layer"].split("_")[2])
            if f_hw >= 3:
                assert row["speedup"] > 1.0, row

    def test_wins_driven_by_cache_references(self, rows):
        for row in rows:
            if row["speedup"] > 1.0:
                assert row["cache_references"] < 1.0


class TestFig17TinyBert:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig17_rows()

    def test_strategy_ordering(self, rows):
        by_strategy = {r["strategy"]: r for r in rows}
        cpu = by_strategy["CPU (MLIR)"]["e2e_s"]
        ns = by_strategy["Ns-SquareTile"]["e2e_s"]
        best = by_strategy["AXI4MLIR Best"]["e2e_s"]
        assert best < ns < cpu

    def test_speedup_bands(self, rows):
        by_strategy = {r["strategy"]: r for r in rows}
        best = by_strategy["AXI4MLIR Best"]
        assert best["e2e_speedup"] > 2.0        # paper: 3.44x
        assert best["matmul_speedup"] > 4.0     # paper: 18.4x
        assert best["matmul_speedup"] > best["e2e_speedup"]

    def test_matmuls_dominate_cpu_runtime(self, rows):
        cpu = _by(rows, strategy="CPU (MLIR)")[0]
        share = cpu["matmuls_cpu_s"] / cpu["e2e_s"]
        assert 0.70 <= share <= 0.85   # paper: 75%


class TestAblations:
    def test_cpu_tiling_never_hurts_large_problems(self):
        with_tiling = measure_generated_matmul(128, 128, 128, 8, 3, "Ns",
                                               cpu_tiling=True)
        without = measure_generated_matmul(128, 128, 128, 8, 3, "Ns",
                                           cpu_tiling=False)
        assert with_tiling.task_clock_ms() <= without.task_clock_ms() * 1.02

    def test_stationary_flows_cut_dma_traffic(self):
        ns = measure_generated_matmul(64, 64, 64, 8, 3, "Ns")
        as_ = measure_generated_matmul(64, 64, 64, 8, 3, "As")
        cs = measure_generated_matmul(64, 64, 64, 8, 3, "Cs")
        assert as_.dma_bytes_to_accel < ns.dma_bytes_to_accel
        assert cs.dma_bytes_from_accel < ns.dma_bytes_from_accel

    def test_manual_and_generated_same_functional_traffic(self):
        generated = measure_generated_matmul(64, 64, 64, 8, 3, "Ns",
                                             cpu_tiling=False)
        manual = measure_manual_matmul(64, 64, 64, 8, 3, "Ns")
        assert generated.dma_bytes_to_accel == manual.dma_bytes_to_accel
        assert generated.dma_bytes_from_accel == manual.dma_bytes_from_accel
