"""Counter-equivalence property tests for the vectorized cost engine.

The batched cache engine and the vectorized copy charging must produce
*bit-identical* counters to the retained scalar reference paths
(``Cache.access_line`` loops and ``charge_memref_copy_reference``) for
any memref geometry — every figure in the evaluation depends on exact
counter reproduction.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime.copy import (
    CopyKinds,
    charge_memref_copy,
    charge_memref_copy_reference,
)
from repro.runtime.memref import MemRefDescriptor
from repro.soc import make_pynq_z2
from repro.soc.cache import Cache, CacheHierarchy
from repro.soc.perf import PerfCounters
from repro.soc.timing import TimingModel


# ---------------------------------------------------------------------------
# Batched cache accesses vs the scalar reference
# ---------------------------------------------------------------------------

@settings(max_examples=60)
@given(
    lines=st.lists(st.integers(0, 120), min_size=1, max_size=250),
    splits=st.lists(st.integers(1, 40), min_size=0, max_size=6),
)
def test_access_batch_matches_access_line(lines, splits):
    scalar = Cache(512, 32, 2)
    batched = Cache(512, 32, 2)
    scalar_results = [scalar.access_line(line) for line in lines]
    batch_results = []
    cursor = 0
    bounds = sorted({min(s, len(lines)) for s in splits} | {len(lines)})
    for bound in bounds:
        if bound > cursor:
            chunk = np.asarray(lines[cursor:bound], dtype=np.int64)
            batch_results.extend(batched.access_batch(chunk).tolist())
            cursor = bound
    assert scalar_results == batch_results
    assert (scalar.hits, scalar.misses) == (batched.hits, batched.misses)
    assert scalar.occupancy() == batched.occupancy()
    for line in set(lines):
        assert scalar.contains_line(line) == batched.contains_line(line)


@settings(max_examples=40)
@given(lines=st.lists(st.integers(0, 400), min_size=1, max_size=300))
def test_hierarchy_batch_matches_scalar(lines):
    timing = TimingModel()
    scalar = CacheHierarchy(timing, Cache(256, 32, 2), Cache(2048, 32, 4))
    batched = CacheHierarchy(timing, Cache(256, 32, 2), Cache(2048, 32, 4))
    counters_scalar = PerfCounters()
    counters_batched = PerfCounters()
    penalty_scalar = scalar.touch_lines(lines, counters_scalar)
    penalty_batched = batched.touch_lines_batch(
        np.asarray(lines, dtype=np.int64), counters_batched
    )
    assert penalty_scalar == penalty_batched
    assert counters_scalar.as_dict() == counters_batched.as_dict()


# ---------------------------------------------------------------------------
# Vectorized copy charging vs the per-row reference
# ---------------------------------------------------------------------------

_DTYPES = (np.int32, np.int64, np.float32, np.float64)


@st.composite
def memref_geometries(draw):
    rank = draw(st.integers(0, 4))
    sizes = tuple(draw(st.integers(1, 5)) for _ in range(rank))
    strides = []
    acc = 1
    for extent in reversed(sizes):
        strides.append(acc * draw(st.sampled_from([1, 1, 2, 3])))
        acc = max(acc * extent, 1) * draw(st.sampled_from([1, 2]))
    strides = tuple(reversed(strides))
    offset = draw(st.integers(0, 3))
    dtype_index = draw(st.integers(0, len(_DTYPES) - 1))
    return sizes, strides, offset, dtype_index


@settings(max_examples=120, deadline=None)
@given(
    geometry=memref_geometries(),
    style=st.sampled_from(CopyKinds.ALL),
    accumulate=st.booleans(),
    offset_words=st.integers(0, 6),
    repeats=st.integers(1, 3),
)
def test_charge_copy_counters_bit_identical(geometry, style, accumulate,
                                            offset_words, repeats):
    sizes, strides, offset, dtype_index = geometry
    dtype = _DTYPES[dtype_index]
    span = 1 + offset
    for extent, stride in zip(sizes, strides):
        span += (extent - 1) * abs(stride)
    storage = np.arange(span, dtype=dtype)

    def run(charge):
        board = make_pynq_z2()
        region = board.memory.allocate(1 << 14, "region")
        base = board.memory.allocate(int(storage.nbytes), "src").base
        desc = MemRefDescriptor(storage, offset, sizes, strides, base)
        # Repeat so the second copy exercises a warm (stateful) cache.
        for _ in range(repeats):
            charge(board, desc, region.base, offset_words * 4, style,
                   accumulate)
        return board.counters.as_dict(), board.clock

    vec_counters, vec_clock = run(charge_memref_copy)
    ref_counters, ref_clock = run(charge_memref_copy_reference)
    assert vec_counters == ref_counters
    assert vec_clock == ref_clock
