module {
  func.func @linalg_ops(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>, %arg3: memref<1x4x8x8xi32>, %arg4: memref<2x4x3x3xi32>, %arg5: memref<1x2x6x6xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "linalg.generic"(%arg0, %arg1, %arg2) {indexing_maps = [affine_map<(m, n, k) -> (m, k)>, affine_map<(m, n, k) -> (k, n)>, affine_map<(m, n, k) -> (m, n)>], iterator_types = ["parallel", "parallel", "reduction"], operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    ({
      ^bb0(%0: i32, %1: i32, %2: i32):
      %3 = "arith.muli"(%0, %1) : (i32, i32) -> (i32)
      %4 = "arith.addi"(%2, %3) : (i32, i32) -> (i32)
      "linalg.yield"(%4) : (i32)
    })
    "linalg.conv_2d_nchw_fchw"(%arg3, %arg4, %arg5) {operandSegmentSizes = [2, 1], strides = [1, 1]} : (memref<1x4x8x8xi32>, memref<2x4x3x3xi32>, memref<1x2x6x6xi32>)
    "func.return"()
  }
}
