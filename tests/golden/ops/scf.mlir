module {
  func.func @scf_ops(%arg0: memref<8xi32>) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "arith.constant"() {value = 8} : () -> (index)
    %2 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %3 = %0 to %1 step %2 {
      scf.for %4 = %0 to %1 step %2 {
        %5 = "memref.load"(%arg0, %4) : (memref<8xi32>, index) -> (i32)
        "memref.store"(%5, %arg0, %3) : (i32, memref<8xi32>, index)
        "scf.yield"()
      }
      "scf.yield"()
    }
    "func.return"()
  }
}
