module {
  func.func @memref_ops(%arg0: memref<8x8xi32>) {
    %0 = "memref.alloc"() : () -> (memref<4x4xi32>)
    %1 = "arith.constant"() {value = 0} : () -> (index)
    %2 = "memref.subview"(%arg0, %1, %1) {static_sizes = [4, 4], static_strides = [1, 1]} : (memref<8x8xi32>, index, index) -> (memref<4x4xi32, strided<[8, 1], offset: ?>>)
    %3 = "memref.load"(%2, %1, %1) : (memref<4x4xi32, strided<[8, 1], offset: ?>>, index, index) -> (i32)
    "memref.store"(%3, %0, %1, %1) : (i32, memref<4x4xi32>, index, index)
    %4 = "memref.dim"(%arg0) {index = 1} : (memref<8x8xi32>) -> (index)
    "memref.copy"(%2, %0) : (memref<4x4xi32, strided<[8, 1], offset: ?>>, memref<4x4xi32>)
    "memref.dealloc"(%0) : (memref<4x4xi32>)
    "func.return"()
  }
}
