module {
  func.func @arith_ops(%arg0: i32, %arg1: i32, %arg2: f32, %arg3: f32) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "arith.constant"() {value = 7} : () -> (i32)
    %2 = "arith.constant"() {value = 0.5} : () -> (f32)
    %3 = "arith.addi"(%arg0, %arg1) : (i32, i32) -> (i32)
    %4 = "arith.subi"(%3, %1) : (i32, i32) -> (i32)
    %5 = "arith.muli"(%4, %arg1) : (i32, i32) -> (i32)
    %6 = "arith.minui"(%5, %arg0) : (i32, i32) -> (i32)
    %7 = "arith.addf"(%arg2, %arg3) : (f32, f32) -> (f32)
    %8 = "arith.subf"(%7, %2) : (f32, f32) -> (f32)
    %9 = "arith.mulf"(%8, %arg3) : (f32, f32) -> (f32)
    "func.return"()
  }
}
