module {
  func.func @double(%arg0: i32) -> i32 {
    %0 = "arith.addi"(%arg0, %arg0) : (i32, i32) -> (i32)
    "func.return"(%0) : (i32)
  }
  func.func @caller(%arg0: i32) {
    %1 = "func.call"(%arg0) {callee = "double"} : (i32) -> (i32)
    "func.return"()
  }
}
