module {
  func.func @accel_ops(%arg0: memref<4x4xi32>) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "arith.constant"() {value = 1073741824} : () -> (index)
    %2 = "arith.constant"() {value = 131072} : () -> (index)
    %3 = "arith.constant"() {value = 1074790400} : () -> (index)
    "accel.dma_init"(%0, %1, %2, %3, %2) : (index, index, index, index, index)
    %4 = "arith.constant"() {value = 0} : () -> (i32)
    %5 = "arith.constant"() {value = 255} : () -> (i32)
    %6 = "accel.send_literal"(%5, %4) : (i32, i32) -> (i32)
    %7 = "accel.send"(%arg0, %6) : (memref<4x4xi32>, i32) -> (i32)
    %8 = "arith.constant"() {value = 1} : () -> (index)
    %9 = "accel.send_dim"(%arg0, %8, %7) : (memref<4x4xi32>, index, i32) -> (i32)
    %10 = "arith.constant"() {value = 3} : () -> (i32)
    %11 = "accel.send_idx"(%10, %9) : (i32, i32) -> (i32)
    %12 = "accel.flush_send"(%11) : (i32) -> (i32)
    "accel.recv"(%arg0, %4) {mode = "accumulate"} : (memref<4x4xi32>, i32)
    "func.return"()
  }
}
