"""Parallel plan prebuilding (repro.execution.prebuild) + service warmup.

The contract under test: :func:`prebuild_plans` pays a spec's whole
cold path (compile, trace, metrics-plan build) up front — persisting
the artifacts into the shared store so a later real run of the same
shape is a pure warm hit — without changing a single bit of what that
run produces.  Per-spec failures are data, worker counter deltas merge
back into the parent's diagnostics, and the ``warmup`` RPC exposes the
same machinery over the service wire.
"""

import warnings

import numpy as np
import pytest

from repro.execution import (
    METRICS_PLAN_COUNTERS,
    PREBUILD_WORKERS_ENV,
    prebuild_plans,
    prebuild_workers,
)
from repro.service import errors as service_errors
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer, service_counters
from repro.service.worker import run_request


def _matmul_spec(m=16, n=16, k=16, **extra):
    spec = {"kind": "matmul", "m": m, "n": n, "k": k,
            "size": 8, "version": 3, "flow": "Ns"}
    spec.update(extra)
    return spec


def _matmul_inputs(m=16, n=16, k=16, seed=11):
    rng = np.random.default_rng(seed)
    return [rng.integers(-7, 7, (m, k)).astype(np.int32),
            rng.integers(-7, 7, (k, n)).astype(np.int32)]


class TestPrebuildPlans:
    def test_prebuild_then_run_is_warm(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        summaries = prebuild_plans([_matmul_spec()])
        assert summaries[0]["ok"] and summaries[0]["kind"] == "matmul"
        # The real run (real inputs this time) finds everything warm:
        # the plan was persisted keyed by shape/configuration, never by
        # input values, so the zero-input prebuild warms it exactly.
        before = dict(METRICS_PLAN_COUNTERS)
        a, b = _matmul_inputs()
        counters, output = run_request(_matmul_spec(inputs=[a, b]))
        assert np.array_equal(
            output, a.astype(np.int64) @ b.astype(np.int64))
        assert METRICS_PLAN_COUNTERS["metrics_plan_hits"] \
            > before["metrics_plan_hits"]
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] \
            == before["metrics_plan_misses"]

    def test_prebuilt_run_bit_identical_to_cold(self, monkeypatch,
                                                tmp_path):
        a, b = _matmul_inputs(seed=29)
        spec = _matmul_spec(inputs=[a, b])

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR",
                           str(tmp_path / "cold"))
        cold_counters, cold_output = run_request(dict(spec))

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR",
                           str(tmp_path / "warm"))
        prebuild_plans([_matmul_spec()])
        warm_counters, warm_output = run_request(dict(spec))

        assert warm_counters.as_dict() == cold_counters.as_dict()
        assert warm_output.tobytes() == cold_output.tobytes()

    def test_bad_spec_is_reported_not_raised(self, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        summaries = prebuild_plans([{"kind": "bogus"}, _matmul_spec()])
        assert not summaries[0]["ok"]
        assert "bogus" in summaries[0]["error"]
        assert summaries[1]["ok"]

    def test_pool_matches_inline_and_merges_deltas(self, monkeypatch,
                                                   tmp_path):
        specs = [_matmul_spec(), _matmul_spec(m=32)]
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR",
                           str(tmp_path / "inline"))
        inline = prebuild_plans(specs, workers=1)

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR",
                           str(tmp_path / "pool"))
        monkeypatch.setenv(PREBUILD_WORKERS_ENV, "2")
        before = dict(METRICS_PLAN_COUNTERS)
        pooled = prebuild_plans(specs)
        assert pooled == inline
        # The forked workers' plan lookups merged back into this
        # process's counters — the accounting rule perf_guard
        # documents.  (They are hits here, not misses: the children
        # inherit the inline leg's in-memory caches across the fork.)
        served = before["metrics_plan_misses"] + before["metrics_plan_hits"]
        assert METRICS_PLAN_COUNTERS["metrics_plan_misses"] \
            + METRICS_PLAN_COUNTERS["metrics_plan_hits"] \
            >= served + len(specs)

    def test_empty_spec_list_is_a_no_op(self):
        assert prebuild_plans([]) == []


class TestEnvKnob:
    def test_malformed_prebuild_workers_warns_once(self, monkeypatch):
        monkeypatch.setenv(PREBUILD_WORKERS_ENV, "a-few")
        with pytest.warns(RuntimeWarning, match=PREBUILD_WORKERS_ENV):
            assert prebuild_workers() >= 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            prebuild_workers()  # second read: no second warning

    def test_workers_clamped_to_minimum(self, monkeypatch):
        monkeypatch.setenv(PREBUILD_WORKERS_ENV, "0")
        assert prebuild_workers() == 1

    def test_unset_defaults_to_cpu_bound(self, monkeypatch):
        monkeypatch.delenv(PREBUILD_WORKERS_ENV, raising=False)
        assert 1 <= prebuild_workers() <= 4


class TestServiceWarmup:
    def test_warmup_rpc_prebuilds_and_reports(self, monkeypatch,
                                              tmp_path):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            with ServiceClient(server.address) as client:
                results = client.warmup([_matmul_spec(),
                                         {"kind": "bogus"}])
                assert results[0]["ok"]
                assert not results[1]["ok"]
                a, b = _matmul_inputs(seed=7)
                reply = client.submit(_matmul_spec(inputs=[a, b]))
                assert np.array_equal(
                    reply["output"],
                    a.astype(np.int64) @ b.astype(np.int64))
            assert service_counters()["service_warmups"] == 1
        finally:
            server.drain()

    def test_warmup_rejects_malformed_specs(self):
        server = ServiceServer(workers=1, queue_max=4).start()
        try:
            with ServiceClient(server.address,
                               max_attempts=1) as client:
                with pytest.raises(service_errors.BadRequest):
                    client.warmup(["not-a-dict"])
        finally:
            server.drain()
