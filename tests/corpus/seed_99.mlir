module {
  func.func @fn0(%arg0: memref<3xi64>, %arg1: i64) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0) : (memref<3xi64>, index) -> (i64)
    "memref.store"(%1, %arg0, %0) : (i64, memref<3xi64>, index)
    %2 = "arith.muli"(%arg1, %arg1) : (i64, i64) -> (i64)
    %3 = "arith.subi"(%arg1, %arg1) : (i64, i64) -> (i64)
    %4 = "arith.constant"() {value = -67.83760823680714, dialect.tfqv0 = 4.737268811752252, ucej1 = [false, "h>B4G(ZqT`8h"], exwt2 = false} : () -> (f64)
    %5 = "arith.addi"(%arg1, %arg1) : (i64, i64) -> (i64)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<3x3xi16>, %arg1: i16) {
    %6 = "arith.constant"() {value = 0} : () -> (index)
    %7 = "memref.load"(%arg0, %6, %6) : (memref<3x3xi16>, index, index) -> (i16)
    "memref.store"(%7, %arg0, %6, %6) : (i16, memref<3x3xi16>, index, index)
    %8 = "arith.constant"() {value = 6} : () -> (index)
    %9 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %10 = %6 to %8 step %9 {
      %11 = "arith.constant"() {value = 127} : () -> (i32)
      %12 = "arith.constant"() {value = 0} : () -> (i32)
      %13 = "accel.send_literal"(%11, %12) : (i32, i32) -> (i32)
      %14 = "accel.flush_send"(%13) : (i32) -> (i32)
      %15 = "arith.addi"(%6, %6) : (index, index) -> (index)
      "scf.yield"()
    }
    "func.return"()
  }
}
