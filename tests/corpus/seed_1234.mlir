module {
  func.func @fn0(%arg0: memref<2xi8>, %arg1: i8) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0) : (memref<2xi8>, index) -> (i8)
    "memref.store"(%1, %arg0, %0) : (i8, memref<2xi8>, index)
    %2 = "arith.constant"() {value = -40} : () -> (i32)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<6xi8>, %arg1: i8) {
    %3 = "arith.constant"() {value = 0} : () -> (index)
    %4 = "memref.load"(%arg0, %3) : (memref<6xi8>, index) -> (i8)
    "memref.store"(%4, %arg0, %3) : (i8, memref<6xi8>, index)
    %5 = "arith.constant"() {value = 50, dialect.fcrg0 = index, dqev1 = 3, dialect.jeyo2 = [{sopb0 = "v4\"%4LJpx", nnyd1 = 2899267108357610386}, affine_map<(m, n) -> (10, 14, 2)>]} : () -> (i8)
    %6 = "arith.constant"() {value = -88, zbhq0 = i32, ocsi1 = [-206.7067296117233]} : () -> (i16)
    %7 = "arith.constant"() {value = 6} : () -> (index)
    %8 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %9 = %3 to %7 step %8 {
      %10 = "arith.addi"(%5, %5) : (i8, i8) -> (i8)
      %11 = "arith.constant"() {value = 0} : () -> (index)
      %12 = "arith.constant"() {value = 4} : () -> (index)
      %13 = "arith.constant"() {value = 1} : () -> (index)
      scf.for %14 = %11 to %12 step %13 {
        %15 = "arith.constant"() {value = 36, pyrp0 = true} : () -> (i32)
        %16 = "arith.constant"() {value = 39} : () -> (i16)
        %17 = "arith.constant"() {value = 87} : () -> (i32)
        %18 = "arith.constant"() {value = 0} : () -> (i32)
        %19 = "accel.send_literal"(%17, %18) : (i32, i32) -> (i32)
        %20 = "accel.flush_send"(%19) : (i32) -> (i32)
        "scf.yield"()
      }
      "scf.yield"()
    }
    %21 = "arith.constant"() {value = -87.83507102984174} : () -> (f64)
    "func.return"()
  }
}
