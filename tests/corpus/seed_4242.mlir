module {
  func.func @fn0(%arg0: memref<7xi16>, %arg1: i16) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0) : (memref<7xi16>, index) -> (i16)
    "memref.store"(%1, %arg0, %0) : (i16, memref<7xi16>, index)
    %2 = "arith.constant"() {value = -3.023576337162865, dialect.czxp0 = false, picd1 = [{phdt0 = affine_map<(m, n, k, i) -> (k, m, i, n)>}, [], affine_map<(m) -> (13)>], axax2 = "G{2 B2TFu2#a"} : () -> (f32)
    %3 = "arith.mulf"(%2, %2) : (f32, f32) -> (f32)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<4x8xi8>, %arg1: i8) {
    %4 = "arith.constant"() {value = 0} : () -> (index)
    %5 = "memref.load"(%arg0, %4, %4) : (memref<4x8xi8>, index, index) -> (i8)
    "memref.store"(%5, %arg0, %4, %4) : (i8, memref<4x8xi8>, index, index)
    %6 = "memref.subview"(%arg0, %4, %4) {static_sizes = [2, 8], static_strides = [1, 1]} : (memref<4x8xi8>, index, index) -> (memref<2x8xi8, strided<[8, 1], offset: ?>>)
    %7 = "memref.dim"(%arg0) {index = 1} : (memref<4x8xi8>) -> (index)
    %8 = "arith.constant"() {value = 5} : () -> (index)
    %9 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %10 = %4 to %8 step %9 {
      %11 = "arith.constant"() {value = 180} : () -> (i32)
      %12 = "arith.constant"() {value = 0} : () -> (i32)
      %13 = "accel.send_literal"(%11, %12) : (i32, i32) -> (i32)
      %14 = "accel.flush_send"(%13) : (i32) -> (i32)
      %15 = "arith.constant"() {value = -62.78830219200422, dialect.evce0 = index} : () -> (f64)
      "scf.yield"()
    }
    "func.return"()
  }
}
