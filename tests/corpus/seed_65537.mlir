module {
  func.func @fn0(%arg0: memref<5xf32>, %arg1: f32) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0) : (memref<5xf32>, index) -> (f32)
    "memref.store"(%1, %arg0, %0) : (f32, memref<5xf32>, index)
    %2 = "arith.constant"() {value = 41.12725199364229, ivfc0 = 8303030517411346606, ocue1 = "mGaL"} : () -> (f64)
    %3 = "arith.constant"() {value = 4} : () -> (index)
    %4 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %5 = %0 to %3 step %4 {
      %6 = "arith.constant"() {value = 40} : () -> (i32)
      %7 = "arith.constant"() {value = 0} : () -> (i32)
      %8 = "accel.send_literal"(%6, %7) : (i32, i32) -> (i32)
      %9 = "accel.flush_send"(%8) : (i32) -> (i32)
      %10 = "arith.constant"() {value = 0} : () -> (index)
      %11 = "arith.constant"() {value = 3} : () -> (index)
      %12 = "arith.constant"() {value = 1} : () -> (index)
      scf.for %13 = %10 to %11 step %12 {
        %14 = "arith.addf"(%2, %2) : (f64, f64) -> (f64)
        %15 = "arith.constant"() {value = 163} : () -> (i32)
        %16 = "arith.constant"() {value = 0} : () -> (i32)
        %17 = "accel.send_literal"(%15, %16) : (i32, i32) -> (i32)
        %18 = "accel.flush_send"(%17) : (i32) -> (i32)
        "scf.yield"()
      }
      "scf.yield"()
    }
    "func.return"()
  }
  func.func @fn1(%arg0: memref<7xf32>, %arg1: f32) {
    %19 = "arith.constant"() {value = 0} : () -> (index)
    %20 = "memref.load"(%arg0, %19) : (memref<7xf32>, index) -> (f32)
    "memref.store"(%20, %arg0, %19) : (f32, memref<7xf32>, index)
    %21 = "arith.constant"() {value = 20.25393388797916, npll0 = affine_map<(m, n, k) -> (m, n, k)>, vuxd1 = [], mxyc2 = 535221533.69100165} : () -> (f32)
    %22 = "arith.constant"() {value = 6.079803977453537, dialect.dpya0 = -1.0, fnpf1 = "}~"} : () -> (f32)
    "func.return"()
  }
}
