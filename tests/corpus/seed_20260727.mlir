module {
  func.func @fn0(%arg0: memref<7xi8>, %arg1: i8) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0) : (memref<7xi8>, index) -> (i8)
    "memref.store"(%1, %arg0, %0) : (i8, memref<7xi8>, index)
    %2 = "arith.constant"() {value = -19, oiqd0 = 710.0853282824405, dialect.clyu1 = index} : () -> (i64)
    %3 = "arith.constant"() {value = 5} : () -> (index)
    %4 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %5 = %0 to %3 step %4 {
      %6 = "arith.constant"() {value = 0} : () -> (index)
      %7 = "arith.constant"() {value = 4} : () -> (index)
      %8 = "arith.constant"() {value = 1} : () -> (index)
      scf.for %9 = %6 to %7 step %8 {
        %10 = "arith.muli"(%2, %2) : (i64, i64) -> (i64)
        %11 = "arith.constant"() {value = 67} : () -> (i32)
        %12 = "arith.constant"() {value = 0} : () -> (i32)
        %13 = "accel.send_literal"(%11, %12) : (i32, i32) -> (i32)
        %14 = "accel.flush_send"(%13) : (i32) -> (i32)
        %15 = "arith.constant"() {value = 72} : () -> (i32)
        %16 = "accel.send_literal"(%15, %12) : (i32, i32) -> (i32)
        %17 = "accel.flush_send"(%16) : (i32) -> (i32)
        %18 = "arith.constant"() {value = 252} : () -> (i32)
        %19 = "accel.send_literal"(%18, %12) : (i32, i32) -> (i32)
        %20 = "accel.flush_send"(%19) : (i32) -> (i32)
        "scf.yield"()
      }
      %21 = "arith.constant"() {value = 69, dialect.swzh0 = []} : () -> (i64)
      %22 = "arith.constant"() {value = 55, dialect.cxlj0 = -5, dialect.powp1 = ["Ca15+wb", 98.70654549502088]} : () -> (i16)
      %23 = "arith.constant"() {value = -5, mwys0 = true, dialect.sdhz1 = {dialect.gkpj0 = 2.0}, agky2 = affine_map<(m, n) -> (11)>} : () -> (i8)
      "scf.yield"()
    }
    %24 = "arith.muli"(%1, %1) : (i8, i8) -> (i8)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<4x1xi64>, %arg1: i64) {
    %25 = "arith.constant"() {value = 0} : () -> (index)
    %26 = "memref.load"(%arg0, %25, %25) : (memref<4x1xi64>, index, index) -> (i64)
    "memref.store"(%26, %arg0, %25, %25) : (i64, memref<4x1xi64>, index, index)
    %27 = "arith.constant"() {value = 7} : () -> (index)
    %28 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %29 = %25 to %27 step %28 {
      %30 = "arith.constant"() {value = -64} : () -> (i16)
      "scf.yield"()
    }
    %31 = "arith.constant"() {value = -38} : () -> (i64)
    %32 = "arith.constant"() {value = -94, edae0 = -2.0} : () -> (index)
    %33 = "arith.subi"(%25, %25) : (index, index) -> (index)
    "func.return"()
  }
}
