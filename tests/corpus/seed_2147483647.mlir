module {
  func.func @fn0(%arg0: memref<5xi8>, %arg1: i8) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0) : (memref<5xi8>, index) -> (i8)
    "memref.store"(%1, %arg0, %0) : (i8, memref<5xi8>, index)
    %2 = "arith.constant"() {value = -43, dialect.pwuy0 = "", hcwt1 = {kjxw0 = 6476985489196681242, dialect.zasy1 = "QT)b{2"}, dialect.nlnb2 = i16} : () -> (index)
    %3 = "arith.constant"() {value = -30.084845343326606} : () -> (f64)
    %4 = "arith.constant"() {value = -29, fmik0 = affine_map<(m) -> (m)>} : () -> (i32)
    %5 = "arith.addf"(%3, %3) : (f64, f64) -> (f64)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<5x3x8xi32>, %arg1: i32) {
    %6 = "arith.constant"() {value = 0} : () -> (index)
    %7 = "memref.load"(%arg0, %6, %6, %6) : (memref<5x3x8xi32>, index, index, index) -> (i32)
    "memref.store"(%7, %arg0, %6, %6, %6) : (i32, memref<5x3x8xi32>, index, index, index)
    %8 = "arith.subi"(%6, %6) : (index, index) -> (index)
    %9 = "arith.subi"(%7, %7) : (i32, i32) -> (i32)
    "func.return"()
  }
}
