module {
  func.func @fn0(%arg0: memref<1x2xi16>, %arg1: i16) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0, %0) : (memref<1x2xi16>, index, index) -> (i16)
    "memref.store"(%1, %arg0, %0, %0) : (i16, memref<1x2xi16>, index, index)
    %2 = "memref.subview"(%arg0, %0, %0) {static_sizes = [1, 1], static_strides = [1, 1]} : (memref<1x2xi16>, index, index) -> (memref<1x1xi16, strided<[2, 1], offset: ?>>)
    %3 = "memref.dim"(%arg0) {index = 0} : (memref<1x2xi16>) -> (index)
    %4 = "arith.addi"(%arg1, %arg1) : (i16, i16) -> (i16)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<7x1x2xi8>, %arg1: i8) {
    %5 = "arith.constant"() {value = 0} : () -> (index)
    %6 = "memref.load"(%arg0, %5, %5, %5) : (memref<7x1x2xi8>, index, index, index) -> (i8)
    "memref.store"(%6, %arg0, %5, %5, %5) : (i8, memref<7x1x2xi8>, index, index, index)
    %7 = "arith.subi"(%arg1, %arg1) : (i8, i8) -> (i8)
    "func.return"()
  }
}
