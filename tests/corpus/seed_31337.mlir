module {
  func.func @fn0(%arg0: memref<1x4x3xi32>, %arg1: i32) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0, %0, %0) : (memref<1x4x3xi32>, index, index, index) -> (i32)
    "memref.store"(%1, %arg0, %0, %0, %0) : (i32, memref<1x4x3xi32>, index, index, index)
    %2 = "arith.subi"(%arg1, %arg1) : (i32, i32) -> (i32)
    %3 = "arith.constant"() {value = 1} : () -> (index)
    scf.for %4 = %0 to %3 step %3 {
      %5 = "arith.constant"() {value = 29} : () -> (i32)
      %6 = "arith.constant"() {value = 0} : () -> (i32)
      %7 = "accel.send_literal"(%5, %6) : (i32, i32) -> (i32)
      %8 = "accel.flush_send"(%7) : (i32) -> (i32)
      %9 = "arith.constant"() {value = 46.2394703227821, fsbh0 = affine_map<(m, n) -> (13, 1, 11)>} : () -> (f32)
      "scf.yield"()
    }
    %10 = "arith.constant"() {value = 2} : () -> (index)
    scf.for %11 = %0 to %10 step %3 {
      %12 = "arith.constant"() {value = 11} : () -> (i16)
      "scf.yield"()
    }
    %13 = "arith.constant"() {value = 8} : () -> (index)
    scf.for %14 = %0 to %13 step %3 {
      %15 = "arith.addi"(%1, %1) : (i32, i32) -> (i32)
      "scf.yield"()
    }
    "func.return"()
  }
}
