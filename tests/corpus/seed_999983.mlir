module {
  func.func @fn0(%arg0: memref<5x6xi8>, %arg1: i8) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0, %0) : (memref<5x6xi8>, index, index) -> (i8)
    "memref.store"(%1, %arg0, %0, %0) : (i8, memref<5x6xi8>, index, index)
    %2 = "arith.constant"() {value = 137} : () -> (i32)
    %3 = "arith.constant"() {value = 0} : () -> (i32)
    %4 = "accel.send_literal"(%2, %3) : (i32, i32) -> (i32)
    %5 = "accel.flush_send"(%4) : (i32) -> (i32)
    %6 = "arith.muli"(%arg1, %arg1) : (i8, i8) -> (i8)
    "func.return"()
  }
  func.func @fn1(%arg0: memref<2x4xi64>, %arg1: i64) {
    %7 = "arith.constant"() {value = 0} : () -> (index)
    %8 = "memref.load"(%arg0, %7, %7) : (memref<2x4xi64>, index, index) -> (i64)
    "memref.store"(%8, %arg0, %7, %7) : (i64, memref<2x4xi64>, index, index)
    %9 = "arith.muli"(%arg1, %arg1) : (i64, i64) -> (i64)
    %10 = "arith.constant"() {value = 48, bnos0 = -2002676472} : () -> (i8)
    "func.return"()
  }
}
