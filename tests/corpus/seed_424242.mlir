module {
  func.func @fn0(%arg0: memref<5x1x6xi32>, %arg1: i32) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "memref.load"(%arg0, %0, %0, %0) : (memref<5x1x6xi32>, index, index, index) -> (i32)
    "memref.store"(%1, %arg0, %0, %0, %0) : (i32, memref<5x1x6xi32>, index, index, index)
    %2 = "arith.constant"() {value = -10, zxyo0 = true} : () -> (i32)
    %3 = "arith.constant"() {value = -19, bqpl0 = {dialect.lleg0 = {ivvn0 = affine_map<(m, n, k) -> (16, 16, 15)>}, ztpt1 = affine_map<(m, n) -> (1)>}, cvkv1 = false} : () -> (index)
    "func.return"()
  }
}
