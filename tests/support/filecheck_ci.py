"""CI driver for the filecheck suite: timed, collection-guarded.

Runs ``tests/test_filecheck.py`` as a separate step, fails if any
``tests/filecheck/*.mlir`` fixture on disk is not collected by pytest
(guarding against silent test-discovery regressions), and records the
suite's wall-clock as a ``filecheck_suite_s`` line in ``BENCH_perf.json``
so the textual-pipeline harness shows up in the perf trajectory.

Usage (from the repo root, locally or in CI)::

    python tests/support/filecheck_ci.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURE_DIR = REPO / "tests" / "filecheck"
BENCH_PERF_PATH = REPO / "BENCH_perf.json"


def _pytest(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "pytest", "tests/test_filecheck.py", *args],
        capture_output=True, text=True, cwd=str(REPO), env=env,
    )


def main() -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.mlir"))
    if not fixtures:
        print(f"error: no fixtures found under {FIXTURE_DIR}",
              file=sys.stderr)
        return 1

    # Collection guard: every fixture on disk must become a test item.
    collected = _pytest("--collect-only", "-q")
    if collected.returncode != 0:
        print(collected.stdout + collected.stderr, file=sys.stderr)
        return collected.returncode
    missing = [
        fixture.name for fixture in fixtures
        if f"test_fixture[{fixture.stem}]" not in collected.stdout
    ]
    if missing:
        print(f"error: fixtures on disk but not collected: {missing}",
              file=sys.stderr)
        return 1

    start = time.perf_counter()
    run = _pytest("-q")
    elapsed = time.perf_counter() - start
    print(run.stdout, end="")
    if run.returncode != 0:
        print(run.stderr, file=sys.stderr)
        return run.returncode

    payload = {}
    if BENCH_PERF_PATH.exists():
        payload = json.loads(BENCH_PERF_PATH.read_text())
    payload["filecheck_suite_s"] = round(elapsed, 3)
    payload["filecheck_fixtures"] = len(fixtures)
    BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"filecheck suite: {len(fixtures)} fixtures in {elapsed:.2f}s "
          f"(recorded in {BENCH_PERF_PATH.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
