"""A miniature FileCheck and the ``.mlir`` fixture runner built on it.

Fixture files under ``tests/filecheck/`` drive the whole compiler
pipeline from text, LLVM-style:

* ``// RUN: <pipeline>`` — a textual pass pipeline for
  :func:`repro.transforms.parse_pass_pipeline`, e.g.
  ``generalize,annotate,lower-to-accel{cpu-tiling=off}``.  An empty
  pipeline (``// RUN:`` alone) makes the fixture a parse/print
  round-trip test.
* ``// ACCEL: matmul version=3 size=4 flow=As [accel_size=32x16x64]``
  or ``// ACCEL: conv ic=4 fhw=3`` — accelerator configuration for the
  annotate/lower passes, built through the standard catalog factories.
* ``// CPU: default`` — attach a default :class:`CPUInfo` so the
  cache-tiling heuristic runs.
* ``// CHECK:`` / ``// CHECK-NEXT:`` / ``// CHECK-NOT:`` — directives
  matched against the module printed after the pipeline.

The module source is simply everything in the file: the IR parser skips
``//`` comments, so directives and IR coexist in one file.  Every
fixture additionally asserts the parser's print-idempotence contract on
its own output: ``print(parse(print(m))) == print(m)``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple

from repro.ir import parse_module, print_module
from repro.ir.verifier import verify
from repro.transforms import parse_pass_pipeline


class CheckFailure(AssertionError):
    """A check directive did not match the pipeline output."""


_DIRECTIVE_RE = re.compile(
    r"//\s*(CHECK(?:-NEXT|-NOT|-SAME)?|RUN|ACCEL|CPU):\s?(.*)$"
)


def parse_directives(source: str) -> List[Tuple[str, str, int]]:
    """Extract ``(kind, payload, line_number)`` directives from a fixture."""
    directives = []
    for number, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(line)
        if match:
            directives.append((match.group(1), match.group(2).strip(),
                               number))
    return directives


def compile_check_pattern(pattern: str) -> "re.Pattern[str]":
    """Compile a CHECK pattern: literal text with ``{{...}}`` regex blocks."""
    parts = []
    position = 0
    for match in re.finditer(r"\{\{(.*?)\}\}", pattern):
        parts.append(re.escape(pattern[position:match.start()]))
        parts.append(match.group(1))
        position = match.end()
    parts.append(re.escape(pattern[position:]))
    return re.compile("".join(parts))


def run_filecheck(output: str, source: str, label: str = "<fixture>") -> None:
    """Match the CHECK directives of ``source`` against ``output``."""
    checks = [(kind, payload, line)
              for kind, payload, line in parse_directives(source)
              if kind.startswith("CHECK")]
    if not checks:
        raise CheckFailure(f"{label}: fixture has no CHECK directives")

    lines = output.splitlines()
    cursor = 0          # next output line eligible for a CHECK match
    last_line = -1      # line of the previous CHECK match (for CHECK-SAME)
    last_end = 0        # column where that match ended
    pending_not: List[Tuple[str, int]] = []

    def scan_not(upto: int) -> None:
        for pattern, directive_line in pending_not:
            regex = compile_check_pattern(pattern)
            for line in lines[cursor:upto]:
                if regex.search(line):
                    raise CheckFailure(
                        f"{label}:{directive_line}: CHECK-NOT pattern "
                        f"{pattern!r} found in output line {line!r}"
                    )
        pending_not.clear()

    for kind, pattern, directive_line in checks:
        if kind == "CHECK-NOT":
            pending_not.append((pattern, directive_line))
            continue
        regex = compile_check_pattern(pattern)
        if kind == "CHECK-SAME":
            if last_line < 0:
                raise CheckFailure(
                    f"{label}:{directive_line}: CHECK-SAME without a "
                    f"preceding CHECK"
                )
            match = regex.search(lines[last_line], last_end)
            if not match:
                raise CheckFailure(
                    f"{label}:{directive_line}: CHECK-SAME {pattern!r} not "
                    f"found after column {last_end} of matched line "
                    f"{lines[last_line]!r}"
                )
            last_end = match.end()
            continue
        if kind == "CHECK-NEXT":
            match = regex.search(lines[cursor]) if cursor < len(lines) \
                else None
            if match is None:
                got = lines[cursor] if cursor < len(lines) else "<eof>"
                raise CheckFailure(
                    f"{label}:{directive_line}: CHECK-NEXT {pattern!r} "
                    f"does not match next line {got!r}"
                )
            scan_not(cursor)
            last_line, last_end = cursor, match.end()
            cursor += 1
            continue
        # Plain CHECK: first match at or after the cursor.
        for index in range(cursor, len(lines)):
            match = regex.search(lines[index])
            if match:
                scan_not(index)
                last_line, last_end = index, match.end()
                cursor = index + 1
                break
        else:
            raise CheckFailure(
                f"{label}:{directive_line}: CHECK pattern {pattern!r} not "
                f"found after output line {cursor}\n--- output ---\n{output}"
            )
    scan_not(len(lines))


# ---------------------------------------------------------------------------
# Fixture running
# ---------------------------------------------------------------------------


def _parse_kv(payload: str) -> Tuple[str, dict]:
    """``"matmul version=3 size=4"`` -> ``("matmul", {...})``."""
    parts = payload.split()
    if not parts:
        raise CheckFailure("empty ACCEL directive")
    options = {}
    for item in parts[1:]:
        if "=" not in item:
            raise CheckFailure(f"malformed ACCEL option {item!r}")
        key, value = item.split("=", 1)
        options[key] = value
    return parts[0], options


def build_accelerator_info(payload: str):
    """Build an :class:`AcceleratorInfo` from an ``// ACCEL:`` directive."""
    from repro.accelerators import make_conv_system, make_matmul_system

    kind, options = _parse_kv(payload)
    if kind == "matmul":
        accel_size = None
        if "accel_size" in options:
            accel_size = tuple(
                int(v) for v in options["accel_size"].split("x")
            )
        _, info = make_matmul_system(
            version=int(options.get("version", 3)),
            size=int(options.get("size", 4)),
            flow=options.get("flow", "Ns"),
            accel_size=accel_size,
        )
        return info
    if kind == "conv":
        _, info = make_conv_system(
            ic=int(options.get("ic", 4)),
            fhw=int(options.get("fhw", 3)),
        )
        return info
    raise CheckFailure(f"unknown ACCEL kind {kind!r}")


def run_fixture(path: Path) -> str:
    """Run one ``.mlir`` fixture end to end; returns the printed output."""
    source = path.read_text()
    directives = parse_directives(source)
    run_specs = [payload for kind, payload, _ in directives if kind == "RUN"]
    if not run_specs:
        raise CheckFailure(f"{path.name}: fixture has no // RUN: directive")

    info = None
    cpu = None
    for kind, payload, _ in directives:
        if kind == "ACCEL":
            info = build_accelerator_info(payload)
        elif kind == "CPU":
            from repro.accel_config import CPUInfo

            cpu = CPUInfo()

    module = parse_module(source, filename=path.name, verify=True)
    for spec in run_specs:
        pipeline = parse_pass_pipeline(spec, info=info, cpu=cpu)
        pipeline.run(module)

    output = print_module(module)

    # Print-idempotence contract on the pipeline output, for free.
    reparsed = parse_module(output, filename=f"{path.name}:<output>")
    verify(reparsed.op)
    if print_module(reparsed) != output:
        raise CheckFailure(
            f"{path.name}: pipeline output does not round-trip through "
            f"the textual parser"
        )

    run_filecheck(output, source, label=path.name)
    return output
