"""CI smoke for the compile/simulate service (run as a script).

Starts a standalone server (``python -m repro.service``), fires a
fleet of concurrent client *processes* at it — mixed matmul/conv
requests, some duplicated across clients to exercise coalescing and
the idempotency cache — then SIGTERMs the server and checks the whole
robustness contract at once:

* every request succeeded (through whatever retries/requeues the
  ambient ``REPRO_FAULTS`` chaos profile forced);
* every response is bit-identical to direct in-process execution;
* the drain summary shows a clean shutdown: empty queue, nothing
  executing, and one merged diagnostics delta per surviving worker;
* the shared kernel store has no ``*.tmp-*`` litter and an empty
  ``corrupt/`` directory.

Environment: ``SERVICE_CI_CLIENTS`` (default 8) client processes with
``SERVICE_CI_REQUESTS`` (default 4) requests each; ``REPRO_FAULTS`` /
``REPRO_FAULTS_SEED`` / ``REPRO_KERNEL_CACHE_DIR`` pass through to
server, workers, and clients alike.

Exit code 0 on success; prints a JSON summary either way.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service import ServiceClient  # noqa: E402
from repro.service.worker import run_request  # noqa: E402

N_CLIENTS = int(os.environ.get("SERVICE_CI_CLIENTS", "8"))
N_REQUESTS = int(os.environ.get("SERVICE_CI_REQUESTS", "4"))
WORKERS = int(os.environ.get("SERVICE_CI_WORKERS", "4"))


def spec_corpus():
    """Deterministic mixed request corpus (small shapes: the smoke
    bar is robustness, not throughput)."""
    specs = []
    for index, (m, n, k) in enumerate(
            [(8, 8, 8), (16, 8, 8), (8, 16, 8), (12, 12, 8),
             (16, 16, 8), (8, 8, 16)]):
        rng = np.random.default_rng(100 + index)
        specs.append({
            "kind": "matmul", "m": m, "n": n, "k": k, "size": 4,
            "version": 1 + index % 3, "flow": ("Ns", "As", "Cs")[index % 3],
            "inputs": [rng.integers(-8, 8, (m, k)).astype(np.int32),
                       rng.integers(-8, 8, (k, n)).astype(np.int32)],
        })
    for index, in_ch in enumerate((2, 3)):
        rng = np.random.default_rng(200 + index)
        specs.append({
            "kind": "conv", "batch": 1, "in_ch": in_ch, "in_hw": 8,
            "out_ch": 3, "f_hw": 3, "stride": 1,
            "inputs": [
                rng.integers(-4, 4, (1, in_ch, 8, 8)).astype(np.int32),
                rng.integers(-4, 4, (3, in_ch, 3, 3)).astype(np.int32),
            ],
        })
    return specs


def client_proc(address, client_index, corpus_len, queue):
    try:
        corpus = spec_corpus()
        with ServiceClient(address, seed=client_index,
                           max_attempts=12,
                           response_timeout_s=20.0) as client:
            for i in range(N_REQUESTS):
                spec_index = (client_index * N_REQUESTS + i) % corpus_len
                reply = client.submit(corpus[spec_index],
                                      deadline_s=180.0)
                queue.put((spec_index, reply["counters"].as_dict(),
                           reply["output"].tobytes()))
    except BaseException as exc:  # noqa: BLE001 - reported to parent
        queue.put(("error", f"client {client_index}: {exc!r}", None))


def store_hygiene(store_dir):
    litter, quarantined = [], []
    if store_dir and os.path.isdir(store_dir):
        for root, _dirs, files in os.walk(store_dir):
            for name in files:
                if ".tmp-" in name:
                    litter.append(os.path.join(root, name))
                if os.path.basename(root) == "corrupt":
                    quarantined.append(os.path.join(root, name))
    return litter, quarantined


def main():
    corpus = spec_corpus()

    # Direct in-process baselines, ambient chaos stripped: the service
    # must reproduce the *clean* results bit-for-bit even under faults.
    ambient = {name: os.environ.pop(name, None)
               for name in ("REPRO_FAULTS", "REPRO_FAULTS_SEED")}
    baselines = []
    for spec in corpus:
        counters, output = run_request(dict(spec))
        baselines.append((counters.as_dict(), output.tobytes()))
    for name, value in ambient.items():
        if value is not None:
            os.environ[name] = value

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--workers", str(WORKERS)],
        stdout=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT,
    )
    ready = json.loads(server.stdout.readline())
    address = ready["socket"]
    print(f"server up: {address} workers={ready['workers']} "
          f"faults={os.environ.get('REPRO_FAULTS', '')!r}", flush=True)

    started = time.time()
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    clients = [
        context.Process(target=client_proc,
                        args=(address, index, len(corpus), queue))
        for index in range(N_CLIENTS)
    ]
    for process in clients:
        process.start()
    results = []
    for _ in range(N_CLIENTS * N_REQUESTS):
        results.append(queue.get(timeout=600))
    for process in clients:
        process.join(timeout=60)

    server.send_signal(signal.SIGTERM)
    drain_line = server.stdout.readline()
    server.wait(timeout=120)
    summary = json.loads(drain_line)

    failures = [r[1] for r in results if r[0] == "error"]
    mismatches = 0
    for spec_index, counters_dict, output_bytes in results:
        if spec_index == "error":
            continue
        if (counters_dict, output_bytes) != baselines[spec_index]:
            mismatches += 1
    litter, quarantined = store_hygiene(
        os.environ.get("REPRO_KERNEL_CACHE_DIR"))
    counters = summary["counters"]
    report = {
        "clients": N_CLIENTS,
        "requests": len(results),
        "elapsed_s": round(time.time() - started, 2),
        "failures": failures,
        "result_mismatches": mismatches,
        "drain_queued": summary["queued"],
        "drain_executing": summary["executing"],
        "workers_merged": counters["service_workers_merged"],
        "worker_crashes": counters["service_worker_crashes"],
        "shed_busy": counters["service_shed_busy"],
        "coalesced": counters["service_coalesced"],
        "timeouts": counters["service_timeouts"],
        "store_tmp_litter": litter,
        "store_quarantined": quarantined,
        "server_returncode": server.returncode,
    }
    print(json.dumps(report, indent=2))

    ok = (not failures
          and mismatches == 0
          and len(results) == N_CLIENTS * N_REQUESTS
          and summary["queued"] == 0
          and summary["executing"] == 0
          and counters["service_workers_merged"] >= 1
          and not litter and not quarantined
          and server.returncode == 0)
    print("service smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
