"""Seeded random module generation for parser round-trip testing.

One generator serves two consumers: the Hypothesis property test draws
seeds and asserts the parse∘print fixpoint on fresh modules, and the
pinned regression corpus under ``tests/corpus/`` is these same modules
for a fixed seed list, committed so parser/printer drift is caught even
with Hypothesis's randomization turned off.

Modules are built exclusively from registered dialect ops (plus random
attribute payloads drawn from every attribute kind), so whatever this
produces is exactly what the parser contracts to re-materialize.
"""

from __future__ import annotations

import random
import string
from typing import List

from repro.dialects import accel, arith, func, memref, scf
from repro.ir import Builder, Module, make_func
from repro.ir.affine import AffineMap
from repro.ir.types import (
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    INDEX,
    MemRefType,
)

INT_TYPES = (I8, I16, I32, I64)
FLOAT_TYPES = (F32, F64)

#: Characters allowed in random string attributes: everything the
#: printer's escape set can carry, including the escapes themselves.
_STRING_ALPHABET = string.ascii_letters + string.digits + \
    " !#$%&'()*+,-./:;<=>?@[]^_`{|}~" + '"\\\n\t'

_DIM_NAMES = ("m", "n", "k", "i", "j")


def _random_string(rng: random.Random) -> str:
    return "".join(
        rng.choice(_STRING_ALPHABET) for _ in range(rng.randint(0, 12))
    )


def _random_affine_map(rng: random.Random) -> AffineMap:
    num_dims = rng.randint(1, 4)
    names = _DIM_NAMES[:num_dims]
    if rng.random() < 0.5:
        perm = list(range(num_dims))
        rng.shuffle(perm)
        return AffineMap.permutation(perm, names)
    values = [rng.randint(0, 16) for _ in range(rng.randint(1, 3))]
    return AffineMap.constant(values, num_dims, names)


def random_attr_value(rng: random.Random, depth: int = 0):
    """A random plain-Python value for ``Operation.set_attr``."""
    kinds = ["int", "float", "bool", "string", "map", "type"]
    if depth < 2:
        kinds += ["array", "dict"]
    kind = rng.choice(kinds)
    if kind == "int":
        return rng.choice([
            rng.randint(-10, 10),
            rng.randint(-2**31, 2**31),
            rng.randint(0, 2**63),
        ])
    if kind == "float":
        return rng.choice([
            rng.uniform(-1e3, 1e3),
            rng.random() * 10 ** rng.randint(-12, 12),
            float(rng.randint(-5, 5)),
        ])
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "string":
        return _random_string(rng)
    if kind == "map":
        return _random_affine_map(rng)
    if kind == "type":
        return rng.choice(INT_TYPES + FLOAT_TYPES + (INDEX,))
    if kind == "array":
        return [random_attr_value(rng, depth + 1)
                for _ in range(rng.randint(0, 4))]
    return {
        _random_key(rng, position): random_attr_value(rng, depth + 1)
        for position in range(rng.randint(1, 3))
    }


def _random_key(rng: random.Random, position: int) -> str:
    stem = "".join(rng.choice(string.ascii_lowercase) for _ in range(4))
    if rng.random() < 0.3:
        stem = f"dialect.{stem}"
    return f"{stem}{position}"


def _sprinkle_attrs(rng: random.Random, op) -> None:
    for position in range(rng.randint(0, 3)):
        op.set_attr(_random_key(rng, position), random_attr_value(rng))


def _emit_scalar_ops(rng: random.Random, b: Builder,
                     pool: List, depth: int) -> None:
    """Append a few arithmetic/accel/memref ops, growing the value pool."""
    for _ in range(rng.randint(1, 4)):
        choice = rng.random()
        if choice < 0.35:
            scalar_type = rng.choice(INT_TYPES + FLOAT_TYPES + (INDEX,))
            if scalar_type in FLOAT_TYPES:
                value = rng.uniform(-100, 100)
            else:
                value = rng.randint(-100, 100)
            result = arith.constant(b, value, scalar_type)
            _sprinkle_attrs(rng, result.op)
            pool.append(result)
        elif choice < 0.6 and pool:
            operand = rng.choice(pool)
            name = str(operand.type)
            if name.startswith("f"):
                fn = rng.choice([arith.addf, arith.subf, arith.mulf])
            elif name in ("index",) or name.startswith("i"):
                fn = rng.choice([arith.addi, arith.subi, arith.muli])
            else:
                continue
            pool.append(fn(b, operand, operand))
        elif choice < 0.8:
            literal = arith.constant(b, rng.randint(0, 255), I32)
            offset = arith.constant(b, 0, I32)
            advanced = accel.send_literal(b, literal, offset)
            accel.flush_send(b, advanced)
        elif depth < 2:
            lower = arith.constant(b, 0, INDEX)
            upper = arith.constant(b, rng.randint(1, 8), INDEX)
            step = arith.constant(b, 1, INDEX)
            with scf.build_for(b, lower, upper, step):
                _emit_scalar_ops(rng, b, list(pool), depth + 1)


def random_module(rng: random.Random) -> Module:
    """Build a random, verifier-clean module from registered dialect ops."""
    module = Module()
    for func_index in range(rng.randint(1, 2)):
        element = rng.choice(INT_TYPES + FLOAT_TYPES)
        rank = rng.randint(1, 3)
        shape = tuple(rng.randint(1, 8) for _ in range(rank))
        ref_type = MemRefType(shape, element)
        func_op = module.add_function(
            make_func(f"fn{func_index}", [ref_type, element])
        )
        _sprinkle_attrs(rng, func_op)
        b = func.builder_at_entry(func_op)
        ref, scalar = func.arguments(func_op)

        pool: List = [scalar]
        zero = arith.constant(b, 0, INDEX)
        pool.append(zero)
        indices = [zero] * rank
        loaded = memref.load(b, ref, indices)
        pool.append(loaded)
        memref.store(b, loaded, ref, indices)
        if rng.random() < 0.5 and rank == 2:
            sizes = [rng.randint(1, dim) for dim in shape]
            sub = memref.subview(b, ref, [zero, zero], sizes)
            dim_value = memref.dim(b, ref, rng.randrange(rank))
            pool.append(dim_value)
            del sub
        _emit_scalar_ops(rng, b, pool, depth=0)
        func.ret(b)
    return module
