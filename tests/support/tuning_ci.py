"""CI smoke for the autotuning sweep engine (run as a script).

Exercises the acceptance bar end-to-end with real processes:

1. runs a small sweep to completion (the reference report);
2. starts the same sweep against a fresh journal and SIGKILLs it the
   instant a couple of results are journaled — no drain, no cleanup;
3. resumes from the half-written journal and lets it finish;
4. asserts the resumed report is **bit-identical** to the reference,
   that completed points were served from the journal rather than
   recomputed, and that neither run littered temp files.

``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` pass through to every run, so
the CI chaos leg layers injected journal I/O errors, worker crashes,
and poisoned points on top of the SIGKILL.

Exit code 0 on success; prints a JSON summary either way.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

WORKDIR = os.environ.get("TUNING_CI_DIR", "tuning_ci")
KILL_AFTER_RESULTS = int(os.environ.get("TUNING_CI_KILL_AFTER", "2"))
STARTUP_TIMEOUT_S = 180


def sweep_command(journal, report):
    return [
        sys.executable, "-m", "repro.tuning",
        "--journal", journal, "--report", report,
        "--versions", "1", "2", "--workers", "2",
    ]


def run_to_completion(journal, report, env):
    proc = subprocess.run(sweep_command(journal, report), env=env,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout[-2000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
        raise SystemExit(f"sweep exited {proc.returncode}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def journaled_results(journal):
    try:
        with open(journal, "r", encoding="utf-8") as fh:
            return fh.read().count('"t":"result"')
    except FileNotFoundError:
        return 0


def main():
    os.makedirs(WORKDIR, exist_ok=True)
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
    clean_journal = os.path.join(WORKDIR, "clean.jsonl")
    clean_report = os.path.join(WORKDIR, "clean.json")
    killed_journal = os.path.join(WORKDIR, "killed.jsonl")
    killed_report = os.path.join(WORKDIR, "killed.json")

    # 1. Reference: one uninterrupted sweep.
    clean_done = run_to_completion(clean_journal, clean_report, env)
    assert clean_done["complete"], clean_done

    # 2. Same sweep, SIGKILLed as soon as results start landing.
    proc = subprocess.Popen(sweep_command(killed_journal, killed_report),
                            env=env, stdout=subprocess.DEVNULL)
    deadline = time.time() + STARTUP_TIMEOUT_S
    while time.time() < deadline:
        if journaled_results(killed_journal) >= KILL_AFTER_RESULTS:
            break
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    killed_mid_run = proc.poll() is None
    results_at_kill = journaled_results(killed_journal)
    if killed_mid_run:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    assert not os.path.exists(killed_report), \
        "an interrupted sweep must not publish a report"

    # 3. Resume from the torn journal.
    resumed_done = run_to_completion(killed_journal, killed_report, env)
    assert resumed_done["complete"], resumed_done
    counters = resumed_done["counters"]
    if killed_mid_run and results_at_kill:
        assert counters["tuning_points_resumed"] >= 1, counters

    # 4. Bit-identity + hygiene.
    with open(clean_report, "rb") as fh:
        reference = fh.read()
    with open(killed_report, "rb") as fh:
        resumed = fh.read()
    identical = reference == resumed
    litter = glob.glob(os.path.join(WORKDIR, "*.tmp-*"))
    cache_dir = env.get("REPRO_KERNEL_CACHE_DIR")
    if cache_dir and os.path.isdir(cache_dir):
        litter += glob.glob(os.path.join(cache_dir, "*.tmp-*"))

    summary = {
        "killed_mid_run": killed_mid_run,
        "results_at_kill": results_at_kill,
        "resumed_points": counters["tuning_points_resumed"],
        "replayed_records": counters["tuning_journal_replayed"],
        "bit_identical": identical,
        "litter": litter,
    }
    print(json.dumps(summary, indent=2))
    if not identical:
        raise SystemExit("resumed report differs from the reference")
    if litter:
        raise SystemExit(f"temp-file litter: {litter}")
    print("TUNING CI SMOKE PASSED")


if __name__ == "__main__":
    main()
