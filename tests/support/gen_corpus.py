"""Regenerate the pinned parser-regression corpus under ``tests/corpus/``.

Run from the repo root after an intentional printer/parser syntax
change::

    PYTHONPATH=src:tests python -m support.gen_corpus

The seeds are pinned so the corpus is reproducible; the property tests
assert the committed files match the generator byte for byte.
"""

from __future__ import annotations

import random
from pathlib import Path

CORPUS_SEEDS = (7, 99, 1234, 4242, 31337, 65537, 424242, 999983,
                20260727, 2**31 - 1)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def main() -> None:
    from repro.ir import print_module
    from repro.ir.verifier import verify

    from .irgen import random_module

    CORPUS_DIR.mkdir(exist_ok=True)
    for stale in CORPUS_DIR.glob("seed_*.mlir"):
        stale.unlink()
    for seed in CORPUS_SEEDS:
        module = random_module(random.Random(seed))
        verify(module.op)
        text = print_module(module) + "\n"
        path = CORPUS_DIR / f"seed_{seed}.mlir"
        path.write_text(text)
        print(f"wrote {path.name}: {len(text.splitlines())} lines")


if __name__ == "__main__":
    main()
