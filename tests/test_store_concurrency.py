"""The kernel store under concurrency, crashes, and size pressure.

The multi-process stress run is the acceptance test for the crash-safe
store: four processes sharing one ``REPRO_KERNEL_CACHE_DIR`` must
produce bit-identical PerfCounters and outputs, leave no temp litter,
quarantine nothing, and end with exactly one published entry per
kernel configuration.
"""

import hashlib
import json
import os
import subprocess
import sys
import threading
import time
import warnings
from collections import OrderedDict
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.accelerators import make_matmul_system
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.soc import make_pynq_z2
from repro.store import (
    KernelStore,
    STORE_COUNTERS,
    StoreFormatError,
    UnencodablePayload,
    decode_payload,
    encode_payload,
    pack_entry,
    reset_store_counters,
    unpack_entry,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_CACHE_MAX_BYTES", raising=False)
    faults.reset_faults()
    reset_store_counters()


# -- codec / container units ------------------------------------------------

class TestCodec:
    def round_trip(self, value):
        manifest, npz = encode_payload(value)
        return decode_payload(manifest, npz)

    def test_scalars_and_containers(self):
        value = {
            "none": None, "flag": True, "int": 1 << 70,
            "float": 0.1 + 0.2, "text": "snake",
            ("tuple", "key"): [1, (2, 3), {4, 5}],
            "od": OrderedDict([(2, "b"), (1, "a")]),
        }
        result = self.round_trip(value)
        assert result == value
        assert isinstance(result[("tuple", "key")][1], tuple)
        assert list(result["od"]) == [2, 1]  # order preserved

    def test_float_bits_survive(self):
        for bits in (0.1, 1e-309, float("inf"), 2.0 ** 53 + 1):
            assert self.round_trip(bits) == bits

    def test_ndarrays_round_trip_bitwise(self):
        arrays = [
            np.arange(7, dtype=np.int64),
            np.array([[1.5, -0.0]], dtype=np.float64),
            np.zeros(0, dtype=np.uint32),
            np.array([True, False]),
            np.int8([1, -1]),
        ]
        result = self.round_trip(arrays)
        for original, loaded in zip(arrays, result):
            assert loaded.dtype == original.dtype
            assert loaded.shape == original.shape
            assert loaded.tobytes() == original.tobytes()

    def test_numpy_scalars_become_plain(self):
        assert self.round_trip(np.int64(5)) == 5
        assert self.round_trip((np.float64(2.5),)) == (2.5,)

    def test_object_dtype_refused(self):
        with pytest.raises(UnencodablePayload):
            encode_payload(np.array([object()], dtype=object))

    def test_arbitrary_classes_refused(self):
        class Sneaky:
            pass

        with pytest.raises(UnencodablePayload):
            encode_payload({"plan": Sneaky()})

    def test_non_whitelisted_tag_rejected_on_load(self):
        manifest, npz = encode_payload({"x": 1})
        hostile = manifest.replace(b'{"format":1', b'{"format":1', 1)
        document = json.loads(hostile)
        document["payload"] = ["o", "os.system", [["cmd", "true"]]]
        with pytest.raises(StoreFormatError):
            decode_payload(json.dumps(document).encode(), npz)


class TestContainer:
    def test_pack_unpack(self):
        manifest, npz = encode_payload({"k": np.arange(3)})
        blob = pack_entry(manifest, npz)
        assert unpack_entry(blob) == (manifest, npz)

    @pytest.mark.parametrize("mutate", [
        lambda blob: b"JUNK" + blob[4:],            # bad magic
        lambda blob: blob[: len(blob) // 2],         # truncation
        lambda blob: blob[:-1],                      # short tail
        lambda blob: blob[:-5] + bytes([blob[-5] ^ 0xFF]) + blob[-4:],
        lambda blob: b"",                            # empty file
    ])
    def test_any_mutation_fails_checksum(self, mutate):
        manifest, npz = encode_payload({"k": np.arange(3)})
        blob = mutate(pack_entry(manifest, npz))
        with pytest.raises(StoreFormatError):
            unpack_entry(blob)


# -- the store proper -------------------------------------------------------

def _payload(tag, words=64):
    return {"tag": tag, "data": np.arange(words, dtype=np.int64)}


class TestKernelStore:
    def test_load_statuses(self, tmp_path):
        store = KernelStore(tmp_path)
        assert store.load("absent") == ("miss", None)
        assert store.store("present", _payload("a"))
        status, payload = store.load("present")
        assert status == "hit"
        assert payload["tag"] == "a"

    def test_corrupt_load_quarantines(self, tmp_path):
        store = KernelStore(tmp_path)
        store.store("entry", _payload("a"))
        path = store.entry_path("entry")
        path.write_bytes(b"scribble")
        assert store.load("entry") == ("corrupt", None)
        assert not path.exists()
        assert list(store.corrupt_dir().iterdir())
        assert STORE_COUNTERS["store_corrupt"] == 1
        assert STORE_COUNTERS["store_quarantined"] == 1
        # The quarantined name is free for a clean republish.
        assert store.store("entry", _payload("b"))
        assert store.load("entry")[0] == "hit"

    def test_build_lock_mutual_exclusion(self, tmp_path):
        store = KernelStore(tmp_path, lock_timeout_s=0.2)
        entered = threading.Event()
        release = threading.Event()
        inner_result = {}

        def holder():
            with store.build_lock("entry") as acquired:
                inner_result["holder"] = acquired
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(timeout=10)
            with store.build_lock("entry") as acquired:
                inner_result["contender"] = acquired
        finally:
            release.set()
            thread.join()
        assert inner_result == {"holder": True, "contender": False}
        assert STORE_COUNTERS["store_lock_timeouts"] == 1
        # Released: immediately acquirable again.
        with store.build_lock("entry") as acquired:
            assert acquired

    def test_gc_evicts_least_recently_used(self, tmp_path):
        store = KernelStore(tmp_path)
        for index, name in enumerate(["old", "mid", "new"]):
            store.store(name, _payload(name))
            stamp = 1_000_000 + index * 1000
            os.utime(store.entry_path(name), (stamp, stamp))
        entry_size = store.entry_path("old").stat().st_size
        evicted = store.gc(max_bytes=2 * entry_size)
        assert evicted == 1
        assert not store.entry_path("old").exists()
        assert store.entry_path("mid").exists()
        assert store.entry_path("new").exists()
        assert STORE_COUNTERS["store_evictions"] == 1

    def test_loads_refresh_recency(self, tmp_path):
        store = KernelStore(tmp_path)
        for index, name in enumerate(["a", "b"]):
            store.store(name, _payload(name))
            stamp = 1_000_000 + index * 1000
            os.utime(store.entry_path(name), (stamp, stamp))
        store.load("a")  # touch: now newer than b
        entry_size = store.entry_path("a").stat().st_size
        store.gc(max_bytes=entry_size)
        assert store.entry_path("a").exists()
        assert not store.entry_path("b").exists()

    def test_gc_sweeps_stale_tmp_litter(self, tmp_path):
        store = KernelStore(tmp_path)
        store.store("entry", _payload("a"))
        shard_dir = store.entry_path("entry").parent
        stale = shard_dir / "crashed.entry.tmp-1-2-3"
        stale.write_bytes(b"partial")
        os.utime(stale, (1_000_000, 1_000_000))
        fresh = shard_dir / "racing.entry.tmp-4-5-6"
        fresh.write_bytes(b"in-flight")
        store.gc(max_bytes=None)
        assert not stale.exists()   # crash litter swept
        assert fresh.exists()       # concurrent writer left alone

    def test_size_cap_env_triggers_gc_on_publish(self, tmp_path,
                                                 monkeypatch):
        store = KernelStore(tmp_path)
        store.store("first", _payload("a"))
        size = store.entry_path("first").stat().st_size
        os.utime(store.entry_path("first"), (1_000_000, 1_000_000))
        monkeypatch.setenv("REPRO_KERNEL_CACHE_MAX_BYTES", str(size + 10))
        store.store("second", _payload("b"))
        assert not store.entry_path("first").exists()
        assert store.entry_path("second").exists()


# -- cross-process stress ---------------------------------------------------

_STRESS_CONFIGS = [(3, 8, "Cs", 32), (2, 4, "As", 16)]

_WORKER = r"""
import hashlib, json, sys
import numpy as np
from repro.accelerators import make_matmul_system
from repro.compiler import AXI4MLIRCompiler, KernelCache
from repro.soc import make_pynq_z2

store = sys.argv[1]
results = []
for version, size, flow, dims in [(3, 8, "Cs", 32), (2, 4, "As", 16)]:
    hw, info = make_matmul_system(version, size, flow=flow)
    cache = KernelCache(disk_dir=store)
    kernel = AXI4MLIRCompiler(info, kernel_cache=cache) \
        .compile_matmul(dims, dims, dims)
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    rng = np.random.default_rng(99)
    a = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
    b = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
    c = np.zeros((dims, dims), np.int32)
    counters = kernel.run(board, a, b, c)
    results.append({
        "counters": counters.as_dict(),
        "digest": hashlib.sha256(c.tobytes()).hexdigest(),
        "corrupt": cache.disk_corrupt,
    })
print(json.dumps(results))
"""


def _subprocess_env(store_dir):
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_KERNEL_CACHE_DIR", None)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


class TestMultiProcessStress:
    def _reference(self, store_dir):
        """The same work as one worker, run in-process, JSON-normalized."""
        results = []
        for version, size, flow, dims in _STRESS_CONFIGS:
            hw, info = make_matmul_system(version, size, flow=flow)
            cache = KernelCache(disk_dir=store_dir)
            kernel = AXI4MLIRCompiler(info, kernel_cache=cache) \
                .compile_matmul(dims, dims, dims)
            board = make_pynq_z2()
            board.attach_accelerator(hw)
            rng = np.random.default_rng(99)
            a = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
            b = rng.integers(-5, 5, (dims, dims)).astype(np.int32)
            c = np.zeros((dims, dims), np.int32)
            counters = kernel.run(board, a, b, c)
            results.append({
                "counters": counters.as_dict(),
                "digest": hashlib.sha256(c.tobytes()).hexdigest(),
                "corrupt": cache.disk_corrupt,
            })
        return json.loads(json.dumps(results))

    def test_four_process_shared_store(self, tmp_path, tmp_path_factory):
        shared = tmp_path / "shared_store"
        reference_store = tmp_path_factory.mktemp("reference_store")
        reference = self._reference(str(reference_store))

        workers = [
            subprocess.Popen(
                [sys.executable, "-c", _WORKER, str(shared)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=_subprocess_env(str(shared)), text=True,
            )
            for _ in range(4)
        ]
        outputs = []
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=300)
            assert worker.returncode == 0, stderr
            outputs.append(json.loads(stdout))

        # Bit-identical PerfCounters and outputs in every process,
        # regardless of who compiled, who loaded, and who raced.
        for output in outputs:
            assert output == reference
        # Nothing was quarantined anywhere...
        assert all(r["corrupt"] == 0 for out in outputs for r in out)
        corrupt_dir = shared / "corrupt"
        assert not corrupt_dir.exists() or not list(corrupt_dir.iterdir())
        # ...the store converged to exactly one entry per config...
        entries = list((shared / "objects").glob("*/*.entry"))
        assert len(entries) == len(_STRESS_CONFIGS)
        # ...and no temp litter survived.
        litter = [p for p in shared.rglob("*") if ".tmp-" in p.name]
        assert litter == []

    def test_stress_with_injected_store_faults(self, tmp_path,
                                               tmp_path_factory):
        """Same bar with store faults firing inside every process."""
        shared = tmp_path / "faulty_store"
        reference_store = tmp_path_factory.mktemp("reference_store")
        reference = self._reference(str(reference_store))

        env = _subprocess_env(str(shared))
        env["REPRO_FAULTS"] = ("store.read:io@0.3;store.write:io@0.3;"
                               "store.lock:timeout@0.5")
        workers = []
        for seed in range(4):
            worker_env = dict(env)
            worker_env["REPRO_FAULTS_SEED"] = str(seed)
            workers.append(subprocess.Popen(
                [sys.executable, "-c", _WORKER, str(shared)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=worker_env, text=True,
            ))
        for worker in workers:
            stdout, stderr = worker.communicate(timeout=300)
            assert worker.returncode == 0, stderr
            output = json.loads(stdout)
            for result, expected in zip(output, reference):
                assert result["counters"] == expected["counters"]
                assert result["digest"] == expected["digest"]
        litter = [p for p in shared.rglob("*") if ".tmp-" in p.name]
        assert litter == []


class TestThreadSafety:
    def test_concurrent_threads_share_one_entry(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cache = KernelCache(disk_dir=store_dir)
        _, info = make_matmul_system(3, 8, flow="Ns")
        kernels = [None] * 6
        errors = []

        def worker(index):
            try:
                compiler = AXI4MLIRCompiler(info, kernel_cache=cache)
                kernels[index] = compiler.compile_matmul(32, 32, 32)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        sources = {kernel.source for kernel in kernels}
        assert len(sources) == 1
        entries = list(Path(store_dir, "objects").glob("*/*.entry"))
        assert len(entries) == 1
        litter = [p for p in Path(store_dir).rglob("*")
                  if ".tmp-" in p.name]
        assert litter == []


class TestEnvKnobWarnings:
    """Malformed store env knobs warn once, then fall back to defaults."""

    def test_malformed_max_bytes_warns_once(self, tmp_path, monkeypatch):
        store = KernelStore(tmp_path)
        monkeypatch.setenv("REPRO_KERNEL_CACHE_MAX_BYTES", "10MB")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_KERNEL_CACHE_MAX_BYTES"):
            assert store.store("env-warn-max", {"x": 1})
        # The malformed cap disables eviction instead of guessing a
        # size: the freshly stored entry is still there.
        assert store.load("env-warn-max")[0] == "hit"
        # One-shot: the same malformed value never warns again.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.store("env-warn-max-two", {"x": 2})

    def test_malformed_lock_timeout_warns_once(self, tmp_path,
                                               monkeypatch):
        store = KernelStore(tmp_path)
        monkeypatch.setenv("REPRO_KERNEL_CACHE_LOCK_TIMEOUT_S", "soonish")
        with pytest.warns(RuntimeWarning,
                          match="REPRO_KERNEL_CACHE_LOCK_TIMEOUT_S"):
            with store.build_lock("env-warn-lock") as acquired:
                assert acquired
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with store.build_lock("env-warn-lock") as acquired:
                assert acquired
