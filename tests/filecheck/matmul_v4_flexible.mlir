// Flexible-size (version 4) accelerator: a rectangular 32x16x64 tile is
// negotiated at init time by sending the tile geometry (0x30 handshake,
// then dims) before any loop runs.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=4 size=16 flow=Cs accel_size=32x16x64

module {
  func.func @matmul_call(%arg0: memref<64x64xi32>, %arg1: memref<64x32xi32>, %arg2: memref<64x32xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<64x64xi32>, memref<64x32xi32>, memref<64x32xi32>)
    "func.return"()
  }
}

// Init handshake: literal 0x30, the m/n tile extents, then dim k.
// CHECK: {value = 48}
// CHECK: "accel.send_literal"
// CHECK: {value = 32}
// CHECK: {value = 16}
// CHECK: "accel.send_dim"(%arg0
// CHECK: "accel.flush_send"
// Host loops step by the flexible tile, and subviews match it.
// CHECK: scf.for
// CHECK: scf.for
// CHECK: "memref.subview"(%arg0, {{.*}}static_sizes = [32, 64]
// CHECK: memref<32x64xi32, strided<[64, 1], offset: ?>>
// CHECK: "memref.subview"(%arg1, {{.*}}static_sizes = [64, 16]
// CHECK: "memref.subview"(%arg2, {{.*}}static_sizes = [32, 16]
// CHECK-NEXT: "accel.recv"
