// Pass options in the pipeline spec: the accelerator config selects the
// As flow, but annotate{flow=Bs} overrides it — the lowered code is
// B-stationary (sB hoisted, A streaming innermost).
// RUN: generalize,annotate{flow=Bs},lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=3 size=4 flow=As

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// CHECK: "accel.dma_init"
// CHECK: scf.for
// CHECK: scf.for
// B is sent at the middle level:
// CHECK: {value = 35}
// CHECK: "memref.subview"(%arg1
// CHECK-NEXT: "accel.send"
// CHECK: scf.for
// CHECK-NOT: "memref.subview"(%arg1
// CHECK: {value = 34}
// CHECK: "memref.subview"(%arg0
// CHECK-NEXT: "accel.send"
// CHECK: "accel.recv"({{.*}}) {mode = "accumulate"}
