// A-stationary MatMul (paper Fig. 6b): the sA transfer is hoisted into
// the (m, k) loop level, so each A tile crosses the bus once while the
// innermost n loop streams B tiles and receives C.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=3 size=4 flow=As

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// CHECK: func.func @matmul_call
// CHECK: "accel.dma_init"({{.*}}) {dma_id = 0}
// CHECK: {value = 255}
// CHECK: "accel.send_literal"
// CHECK: "accel.flush_send"
// CHECK: scf.for
// CHECK: scf.for
// CHECK: {value = 34}
// CHECK: "memref.subview"(%arg0, {{.*}}static_sizes = [4, 4]
// CHECK-NEXT: "accel.send"
// The innermost loop re-sends only B and receives C: A stays put.
// CHECK: scf.for
// CHECK-NOT: "memref.subview"(%arg0
// CHECK: {value = 35}
// CHECK: "memref.subview"(%arg1
// CHECK-NEXT: "accel.send"
// CHECK: {value = 240}
// CHECK: {value = 36}
// CHECK: "memref.subview"(%arg2
// CHECK-NEXT: "accel.recv"({{.*}}) {mode = "accumulate"}
// CHECK: "func.return"
