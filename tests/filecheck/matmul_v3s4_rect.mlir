// Rectangular problem (m=16, n=12, k=8): every extent divides the 4x4x4
// accelerator tile, and each loop gets its own trip count.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=3 size=4 flow=As

module {
  func.func @matmul_call(%arg0: memref<16x8xi32>, %arg1: memref<8x12xi32>, %arg2: memref<16x12xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<16x8xi32>, memref<8x12xi32>, memref<16x12xi32>)
    "func.return"()
  }
}

// A-stationary loop order is (m, k, n): bounds 16, then 8, then 12.
// CHECK: {value = 16}
// CHECK: scf.for
// CHECK: {value = 8}
// CHECK: scf.for
// CHECK: "memref.subview"(%arg0, {{.*}}static_sizes = [4, 4]
// CHECK: memref<4x4xi32, strided<[8, 1], offset: ?>>
// CHECK: {value = 12}
// CHECK: scf.for
// CHECK: "memref.subview"(%arg1, {{.*}}static_sizes = [4, 4]
// CHECK: memref<4x4xi32, strided<[12, 1], offset: ?>>
// CHECK: "memref.subview"(%arg2
// CHECK: memref<4x4xi32, strided<[12, 1], offset: ?>>
