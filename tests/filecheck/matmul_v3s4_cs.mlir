// C-stationary MatMul: the accelerator accumulates across the k loop,
// so the receive is hoisted out of the innermost loop — C comes back
// once per (m, n) tile.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=3 size=4 flow=Cs

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// CHECK: "accel.dma_init"
// CHECK: scf.for
// CHECK: scf.for
// CHECK: scf.for
// The innermost (k) loop streams both operands and the cC compute
// opcode, but never receives:
// CHECK: {value = 34}
// CHECK: "memref.subview"(%arg0
// CHECK-NEXT: "accel.send"
// CHECK: {value = 35}
// CHECK: "memref.subview"(%arg1
// CHECK-NEXT: "accel.send"
// CHECK: {value = 240}
// CHECK-NOT: "accel.recv"
// CHECK: "scf.yield"
// The receive happens after the k loop closes, once per output tile.
// CHECK: {value = 36}
// CHECK: "memref.subview"(%arg2
// CHECK-NEXT: "accel.recv"({{.*}}) {mode = "accumulate"}
// CHECK: "scf.yield"
