// Convolution offload (paper Fig. 15b): filter-stationary FOs flow on
// the SECDA-style Conv2D engine.  The init opcodes send the filter and
// image geometry with accel.send_dim; each output channel's filter is
// sent once, then the spatial loops stream image slices.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: conv ic=4 fhw=3

module {
  func.func @conv_call(%arg0: memref<1x4x8x8xi32>, %arg1: memref<2x4x3x3xi32>, %arg2: memref<1x2x6x6xi32>) {
    "linalg.conv_2d_nchw_fchw"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1], strides = [1, 1]} : (memref<1x4x8x8xi32>, memref<2x4x3x3xi32>, memref<1x2x6x6xi32>)
    "func.return"()
  }
}

// Init: rst opcode = 32, filter-width dim, 16, image-channel dim.
// CHECK: "accel.dma_init"
// CHECK: {value = 32}
// CHECK: "accel.send_dim"(%arg1
// CHECK: {value = 16}
// CHECK: "accel.send_dim"(%arg0
// CHECK: "accel.flush_send"
// Outer loop over the 2 output channels sends that channel's filter.
// CHECK: {value = 2}
// CHECK: scf.for
// CHECK: "memref.subview"(%arg1, {{.*}}static_sizes = [1, 4, 3, 3]
// CHECK-NEXT: "accel.send"
// CHECK: "accel.flush_send"
// Spatial loops: batch, then 6x6 output pixels, image slice innermost.
// CHECK: scf.for
// CHECK: scf.for
// CHECK: scf.for
// CHECK: {value = 70}
// CHECK: "memref.subview"(%arg0
// CHECK-NEXT: "accel.send"
// CHECK: "memref.subview"(%arg2
// CHECK-NEXT: "accel.recv"
