// B-stationary MatMul: sB is hoisted one level above sA, so each B tile
// is transferred once per (n, k) iteration while A streams innermost.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=2 size=4 flow=Bs

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// CHECK: "accel.dma_init"
// CHECK: scf.for
// CHECK: scf.for
// B goes out at the middle loop level...
// CHECK: {value = 35}
// CHECK: "memref.subview"(%arg1, {{.*}}static_sizes = [4, 4]
// CHECK-NEXT: "accel.send"
// ...and the innermost loop only moves A and C.
// CHECK: scf.for
// CHECK-NOT: "memref.subview"(%arg1
// CHECK: {value = 34}
// CHECK: "memref.subview"(%arg0
// CHECK-NEXT: "accel.send"
// CHECK: {value = 38}
// CHECK: "accel.flush_send"
// CHECK: "memref.subview"(%arg2
// CHECK-NEXT: "accel.recv"({{.*}}) {mode = "accumulate"}
