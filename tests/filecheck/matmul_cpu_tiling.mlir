// CPU cache-hierarchy tiling (paper Fig. 4 step 4): with a CPU config
// attached, a 256^3 problem gets outer cache loops (step 128) wrapped
// around the accelerator loops (step 4), six loops in total.
// RUN: generalize,annotate,lower-to-accel
// ACCEL: matmul version=3 size=4 flow=Cs
// CPU: default

module {
  func.func @matmul_call(%arg0: memref<256x256xi32>, %arg1: memref<256x256xi32>, %arg2: memref<256x256xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<256x256xi32>, memref<256x256xi32>, memref<256x256xi32>)
    "func.return"()
  }
}

// Outer cache loops step by the CPU tile...
// CHECK: {value = 256}
// CHECK: {value = 128}
// CHECK: scf.for %{{[0-9]+}} = %{{[0-9]+}} to %{{[0-9]+}} step %{{[0-9]+}} {
// CHECK: scf.for
// CHECK: scf.for
// ...and the inner accelerator loops step by the 4x4x4 tile, with
// bounds computed from the enclosing cache-loop induction variable.
// CHECK: "arith.addi"
// CHECK: {value = 4}
// CHECK: scf.for
// CHECK: "memref.subview"(%arg0, {{.*}}static_sizes = [4, 4]
// CHECK: "accel.send"
// CHECK: "accel.recv"
