// Parse/print round-trip of the full attribute zoo: typed and untyped
// numbers, booleans, escaped strings, nested arrays/dicts, affine maps,
// and type attributes all survive a trip through the parser.
// RUN:

module {
  func.func @attrs() {
    %0 = "arith.constant"() {value = -7, note = "hi \"there\"\n", flag = true, ratio = 0.5, typed = 12 : i32, seq = [1, 2.5, false, [3, 4]], cfg = {inner = {deep = 9}, name = "x"}, amap = affine_map<(m, n) -> (n, m)>, ty = memref<2x2xi32>, fn = () -> ()} : () -> (index)
    "func.return"()
  }
}

// CHECK: func.func @attrs()
// CHECK-NEXT: "arith.constant"()
// CHECK-SAME: value = -7
// CHECK-SAME: note = "hi \"there\"\n"
// CHECK-SAME: flag = true
// CHECK-SAME: ratio = 0.5
// CHECK-SAME: typed = 12 : i32
// CHECK-SAME: seq = [1, 2.5, false, [3, 4]]
// CHECK-SAME: cfg = {inner = {deep = 9}, name = "x"}
// CHECK-SAME: amap = affine_map<(m, n) -> (n, m)>
// CHECK-SAME: ty = memref<2x2xi32>
// CHECK-SAME: fn = () -> ()
// CHECK-NEXT: "func.return"
