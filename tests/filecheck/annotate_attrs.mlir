// Match-and-annotate (paper Fig. 6a): the accelerator trait attributes
// are attached to the matched linalg.generic, including the opcode_map
// and opcode_flow attribute kinds the paper introduces.
// RUN: generalize,annotate
// ACCEL: matmul version=3 size=4 flow=As

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// The whole trait lands in the generic op's attribute dictionary (one
// printed line), so the attributes are checked with CHECK-SAME.
// CHECK: "linalg.generic"(%arg0, %arg1, %arg2)
// CHECK-SAME: accel.name = "matmul_v3_4"
// CHECK-SAME: accel.dma_init_config = {id = 0, inputAddress = 1073741824, inputBufferSize = 131072, outputAddress = 1074790400, outputBufferSize = 131072}
// CHECK-SAME: accel.accel_dim = {m = 4, n = 4, k = 4}
// CHECK-SAME: accel.opcode_map = opcode_map < sA = [send_literal(0x22), send(0)]
// CHECK-SAME: accel.opcode_flow = opcode_flow < (sA (sB cC rC)) >
// CHECK-SAME: accel.flow_name = "As"
// CHECK-SAME: accel.data_type = i32
// CHECK-SAME: accel.init_opcodes = opcode_flow < (reset) >
