// Same pipeline at a different tiling: an 8x8x8 accelerator tile over a
// 16x16x16 problem — loop steps and subview sizes follow the tile.
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=3 size=8 flow=Cs

module {
  func.func @matmul_call(%arg0: memref<16x16xi32>, %arg1: memref<16x16xi32>, %arg2: memref<16x16xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<16x16xi32>, memref<16x16xi32>, memref<16x16xi32>)
    "func.return"()
  }
}

// CHECK: "accel.dma_init"
// CHECK: {value = 16}
// CHECK: {value = 8}
// CHECK: scf.for
// CHECK: scf.for
// CHECK: scf.for
// CHECK: "memref.subview"(%arg0, {{.*}}static_sizes = [8, 8]
// CHECK: memref<8x8xi32, strided<[16, 1], offset: ?>>
// CHECK: "memref.subview"(%arg1, {{.*}}static_sizes = [8, 8]
// CHECK: "memref.subview"(%arg2, {{.*}}static_sizes = [8, 8]
// CHECK-NEXT: "accel.recv"
