// The generalization step alone: named linalg ops are rewritten into
// linalg.generic with the canonical indexing maps, iterator types, and
// a multiply-accumulate region (paper Fig. 2a).
// RUN: generalize

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// CHECK: func.func @matmul_call
// CHECK-NOT: "linalg.matmul"
// CHECK: "linalg.generic"(%arg0, %arg1, %arg2)
// CHECK-SAME: indexing_maps = [affine_map<(m, n, k) -> (m, k)>, affine_map<(m, n, k) -> (k, n)>, affine_map<(m, n, k) -> (m, n)>]
// CHECK-SAME: iterator_types = ["parallel", "parallel", "reduction"]
// CHECK-NEXT: ({
// CHECK-NEXT: ^bb0(%{{[0-9]+}}: i32, %{{[0-9]+}}: i32, %{{[0-9]+}}: i32):
// CHECK: "arith.muli"
// CHECK-NEXT: "arith.addi"
// CHECK-NEXT: "linalg.yield"
// CHECK: })
// CHECK: "func.return"
