// No-stationary MatMul on the version-1 accelerator: no transfer is
// hoisted — both operand tiles are sent and the output received in the
// innermost loop (paper Fig. 2b).
// RUN: generalize,annotate,lower-to-accel{cpu-tiling=off}
// ACCEL: matmul version=1 size=4 flow=Ns

module {
  func.func @matmul_call(%arg0: memref<8x8xi32>, %arg1: memref<8x8xi32>, %arg2: memref<8x8xi32>) {
    "linalg.matmul"(%arg0, %arg1, %arg2) {operandSegmentSizes = [2, 1]} : (memref<8x8xi32>, memref<8x8xi32>, memref<8x8xi32>)
    "func.return"()
  }
}

// CHECK: "accel.dma_init"
// No tile moves before the innermost loop opens.
// CHECK: scf.for
// CHECK-NOT: "accel.send"(
// CHECK: scf.for
// CHECK-NOT: "accel.send"(
// CHECK: scf.for
// CHECK: {value = 33}
// CHECK: "memref.subview"(%arg0
// CHECK-NEXT: "accel.send"
// CHECK: "memref.subview"(%arg1
// CHECK-NEXT: "accel.send"
// CHECK: "accel.flush_send"
// CHECK: "memref.subview"(%arg2
// CHECK-NEXT: "accel.recv"({{.*}}) {mode = "accumulate"}
