// Parse/print round-trip (empty pipeline): loops, subviews, loads and
// stores written by hand re-print in the canonical form.
// RUN:

module {
  func.func @kern(%arg0: memref<8x8xf32>) {
    %0 = "arith.constant"() {value = 0} : () -> (index)
    %1 = "arith.constant"() {value = 8} : () -> (index)
    %2 = "arith.constant"() {value = 4} : () -> (index)
    scf.for %3 = %0 to %1 step %2 {
      %4 = "memref.subview"(%arg0, %3, %0) {static_sizes = [4, 4], static_strides = [1, 1]} : (memref<8x8xf32>, index, index) -> (memref<4x4xf32, strided<[8, 1], offset: ?>>)
      %5 = "memref.load"(%4, %0, %0) : (memref<4x4xf32, strided<[8, 1], offset: ?>>, index, index) -> (f32)
      %6 = "arith.mulf"(%5, %5) : (f32, f32) -> (f32)
      "memref.store"(%6, %4, %0, %0) : (f32, memref<4x4xf32, strided<[8, 1], offset: ?>>, index, index)
      "scf.yield"()
    }
    "func.return"()
  }
}

// CHECK: func.func @kern(%arg0: memref<8x8xf32>)
// CHECK-NEXT: {value = 0}
// CHECK: scf.for %{{[0-9]+}} = %{{[0-9]+}} to %{{[0-9]+}} step %{{[0-9]+}} {
// CHECK-NEXT: "memref.subview"(%arg0
// CHECK-SAME: strided<[8, 1], offset: ?>
// CHECK-NEXT: "memref.load"
// CHECK-NEXT: "arith.mulf"
// CHECK-NEXT: "memref.store"
// CHECK-NEXT: "scf.yield"
// CHECK-NEXT: }
// CHECK-NEXT: "func.return"
