"""Fig. 17: TinyBERT end-to-end co-execution, batch size 2.

Expected shape: matmuls dominate CPU-only runtime (~75%); offloading
them (Ns-SquareTile) gives a large end-to-end speedup; the Best
flexible-tiling heuristic improves further, with matmul-layer speedups
well above the end-to-end speedup.
"""

from repro.experiments import fig17_rows, format_table

COLUMNS = ("strategy", "other_layers_s", "matmuls_cpu_s", "matmuls_acc_s",
           "e2e_s", "e2e_speedup", "matmul_speedup")


def test_fig17_tinybert(benchmark, write_table):
    rows = benchmark.pedantic(fig17_rows, rounds=1, iterations=1)
    write_table("fig17_tinybert", format_table(rows, COLUMNS))

    by_strategy = {r["strategy"]: r for r in rows}
    cpu = by_strategy["CPU (MLIR)"]
    ns = by_strategy["Ns-SquareTile"]
    best = by_strategy["AXI4MLIR Best"]
    assert 0.70 <= cpu["matmuls_cpu_s"] / cpu["e2e_s"] <= 0.85
    assert best["e2e_s"] < ns["e2e_s"] < cpu["e2e_s"]
    assert best["e2e_speedup"] > 2.0
    assert best["matmul_speedup"] > best["e2e_speedup"]
