"""Fig. 10: runtime characterization, CPU vs accelerator offload.

Regenerates the (dims, accel_size, accel_version) -> task-clock series.
Expected shape: offload only becomes relevant for dims >= 64 with
accelerator size >= 8; below either threshold the CPU is faster.
"""

from repro.experiments import fig10_rows, format_table

COLUMNS = ("dims", "accel_size", "accel_version", "task_clock_ms")


def test_fig10_relevance(benchmark, write_table):
    rows = benchmark.pedantic(fig10_rows, rounds=1, iterations=1)
    write_table("fig10_relevance", format_table(rows, COLUMNS))

    cpu = {r["dims"]: r["task_clock_ms"] for r in rows
           if r["accel_version"] == "NONE"}
    accel = {(r["dims"], r["accel_size"]): r["task_clock_ms"]
             for r in rows if r["accel_version"] == "v1"}
    # CPU wins all small problems; size-16 offload wins from dims == 64.
    assert all(cpu[d] < accel[(d, s)] for d in (16, 32) for s in (4, 8, 16))
    assert accel[(64, 16)] < cpu[64]
    assert accel[(128, 8)] < cpu[128]
    assert accel[(128, 4)] > cpu[128]
