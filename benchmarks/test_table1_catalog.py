"""Table I: the accelerator catalog (type, reuse, opcodes, throughput)."""

from repro.experiments import format_table, table1_rows

COLUMNS = ("type", "possible_reuse", "opcodes", "size", "ops_per_cycle",
           "flows")


def test_table1_catalog(benchmark, write_table):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    write_table("table1_catalog", format_table(rows, COLUMNS))
    assert len(rows) == 12  # 4 versions x 3 sizes
