"""Fig. 14: MatMul problem permutations on the flexible-size v4
accelerator: square-tile heuristics vs the Best (flexible) heuristic.

Expected shape: the best square flow changes with the problem
permutation, and Best (rectangular tiles + free flow choice) is never
worse than any square strategy.
"""

from repro.experiments import fig14_rows, format_table

COLUMNS = ("dims", "As-squareTile_ms", "Bs-squareTile_ms",
           "Cs-squareTile_ms", "Best_ms", "Best_config")


def test_fig14_flexible_tiling(benchmark, write_table):
    rows = benchmark.pedantic(fig14_rows, rounds=1, iterations=1)
    write_table("fig14_flexible", format_table(rows, COLUMNS))

    winners = set()
    for row in rows:
        squares = {
            "As": row["As-squareTile_ms"],
            "Bs": row["Bs-squareTile_ms"],
            "Cs": row["Cs-squareTile_ms"],
        }
        winners.add(min(squares, key=squares.get))
        assert row["Best_ms"] <= min(squares.values()) * 1.001
    assert len(winners) >= 2
