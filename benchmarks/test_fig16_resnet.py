"""Fig. 16: ResNet18 convolution layers, AXI4MLIR vs manual driver,
normalized to the manual (cpp_MANUAL) run per layer.

Expected shape: AXI4MLIR wins on every fHW >= 3 layer via lower cache
reference counts; fHW == 1 layers regress because the strided-copy
specialization cannot apply to single-element rows (the paper's
56_64_1_128_2 regression).  Layers run spatially scaled by default;
set REPRO_FULL_SCALE=1 for the full shapes.
"""

from repro.experiments import fig16_rows, format_table

COLUMNS = ("layer", "branch_instructions", "cache_references",
           "task_clock", "speedup")


def test_fig16_resnet_layers(benchmark, write_table):
    rows = benchmark.pedantic(fig16_rows, rounds=1, iterations=1)
    wins = sum(r["speedup"] > 1.0 for r in rows)
    write_table(
        "fig16_resnet",
        format_table(rows, COLUMNS) + f"\n\nwins: {wins}/{len(rows)}",
    )
    assert wins >= 7
    regression = next(r for r in rows if r["layer"] == "56_64_1_128_2")
    assert regression["speedup"] < 1.0
