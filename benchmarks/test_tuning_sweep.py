"""Autotuning sweep engine: best-config search over the smoke space.

Times one end-to-end sweep — enumeration, traffic-model pruning,
journaled execution, report rendering — and records the winners per
(kernel, shape).  Expected shape: the sweep agrees with simulation
(the reported best really has the lowest simulated time within its
group), and completed+pruned+poisoned+failed accounts for every point.
"""

from repro.experiments import format_table, sweep_rows

COLUMNS = ("group", "accel_version", "flow", "tiles", "cpu_tiling",
           "metric_s")


def test_tuning_sweep(benchmark, write_table, tmp_path):
    rows = benchmark.pedantic(
        sweep_rows, rounds=1, iterations=1,
        kwargs={"journal_path": tmp_path / "sweep.jsonl",
                "report_path": tmp_path / "sweep_report.json"},
    )
    write_table("tuning_sweep", format_table(rows, COLUMNS))

    assert rows, "sweep produced no winners"
    groups = {row["group"] for row in rows}
    assert groups == {"matmul-8x8x8", "matmul-16x16x8"}
    for row in rows:
        assert row["metric_s"] > 0
    # The journal compacted to its live content and the report is
    # where the driver published it.
    assert (tmp_path / "sweep_report.json").exists()
    assert not list(tmp_path.glob("*.tmp-*"))
