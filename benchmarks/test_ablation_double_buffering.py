"""Ablation: blocking vs double-buffered (non-blocking) transfers.

The paper's Sec. V describes non-blocking transfers + double buffering
as ongoing work on top of this infrastructure; this bench quantifies
what the overlap buys on the simulated board.
"""

import numpy as np

from repro.accelerators import make_matmul_system
from repro.compiler import AXI4MLIRCompiler
from repro.experiments import format_table
from repro.runtime import DoubleBufferedRuntime
from repro.soc import make_pynq_z2


def _run(dims, flow, runtime_cls):
    hw, info = make_matmul_system(3, 16, flow=flow)
    board = make_pynq_z2()
    board.attach_accelerator(hw)
    kernel = AXI4MLIRCompiler(info).compile_matmul(dims, dims, dims)
    rng = np.random.default_rng(0)
    a = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
    b = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
    c = np.zeros((dims, dims), np.int32)
    runtime = runtime_cls(board) if runtime_cls else None
    counters = kernel.run(board, a, b, c, runtime=runtime)
    assert np.array_equal(c, a @ b)
    return counters


def test_ablation_double_buffering(benchmark, write_table):
    def run():
        rows = []
        for dims in (64, 128):
            for flow in ("Ns", "Cs"):
                blocking = _run(dims, flow, None)
                buffered = _run(dims, flow, DoubleBufferedRuntime)
                rows.append({
                    "dims": dims, "flow": flow,
                    "blocking_ms": blocking.task_clock_ms(),
                    "double_buffered_ms": buffered.task_clock_ms(),
                    "speedup": blocking.task_clock_ms()
                    / buffered.task_clock_ms(),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table("ablation_double_buffering", format_table(
        rows, ("dims", "flow", "blocking_ms", "double_buffered_ms",
               "speedup")
    ))
    assert all(r["speedup"] > 1.0 for r in rows)
