"""Ablations for the design choices DESIGN.md calls out.

1. CPU cache-hierarchy tiling on/off (the step-4 transformation);
2. staged-send batching: per-action flushes vs batched transactions;
3. copy specialization (also covered by Fig. 12, summarized here);
4. call-overhead specialization (generated vs manual-style calls).
"""

import numpy as np

from repro.accelerators import make_matmul_system
from repro.compiler import AXI4MLIRCompiler
from repro.experiments import format_table, measure_generated_matmul
from repro.runtime import AxiRuntime, CALL_STYLE_MANUAL
from repro.soc import make_pynq_z2


def test_ablation_cpu_tiling(benchmark, write_table):
    """Outer (cache) tiling matters once matrices exceed the LLC."""

    def run():
        rows = []
        for dims in (64, 128, 512):
            with_tiling = measure_generated_matmul(
                dims, dims, dims, 16, 3, "Ns", cpu_tiling=True
            )
            without = measure_generated_matmul(
                dims, dims, dims, 16, 3, "Ns", cpu_tiling=False
            )
            rows.append({
                "dims": dims,
                "tiled_ms": with_tiling.task_clock_ms(),
                "untiled_ms": without.task_clock_ms(),
                "l2_miss_ratio": (with_tiling.l2_misses + 1)
                / (without.l2_misses + 1),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table("ablation_cpu_tiling", format_table(
        rows, ("dims", "tiled_ms", "untiled_ms", "l2_miss_ratio")
    ))
    # Matrices inside the LLC: tiling is neutral (within 5%).
    for row in rows[:-1]:
        assert row["tiled_ms"] <= row["untiled_ms"] * 1.05
    # Matrices beyond the LLC (512^2 int32 = 1 MiB each): tiling wins.
    big = rows[-1]
    assert big["tiled_ms"] <= big["untiled_ms"] / 1.2
    assert big["l2_miss_ratio"] <= 0.5


def test_ablation_send_batching(benchmark, write_table):
    """Batching staged sends into one DMA transaction cuts transactions.

    Compares the generated driver (literal+tile batched per opcode, all
    sends of a scope in one flush) against a degraded runtime that
    flushes after every staging call.
    """
    dims, size = 64, 8

    def run():
        hw, info = make_matmul_system(3, size, flow="Ns")
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info).compile_matmul(dims, dims, dims)
        rng = np.random.default_rng(0)
        a = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
        b = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
        c = np.zeros((dims, dims), np.int32)
        batched = kernel.run(board, a, b, c)

        class EagerRuntime(AxiRuntime):
            """Flushes after every staged word/tile (no batching)."""

            def send_literal(self, literal, offset):
                return self.flush_send(super().send_literal(literal, offset))

            def send_memref(self, desc, offset):
                return self.flush_send(super().send_memref(desc, offset))

        hw2, info2 = make_matmul_system(3, size, flow="Ns")
        board2 = make_pynq_z2()
        board2.attach_accelerator(hw2)
        kernel2 = AXI4MLIRCompiler(info2).compile_matmul(dims, dims, dims)
        c2 = np.zeros((dims, dims), np.int32)
        eager = kernel2.run(board2, a, b, c2,
                            runtime=EagerRuntime(board2))
        assert np.array_equal(c, c2)
        return [{
            "mode": "batched",
            "dma_transactions": batched.dma_transactions,
            "task_clock_ms": batched.task_clock_ms(),
        }, {
            "mode": "eager-flush",
            "dma_transactions": eager.dma_transactions,
            "task_clock_ms": eager.task_clock_ms(),
        }]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table("ablation_send_batching", format_table(
        rows, ("mode", "dma_transactions", "task_clock_ms")
    ))
    batched, eager = rows
    assert batched["dma_transactions"] < eager["dma_transactions"]
    assert batched["task_clock_ms"] < eager["task_clock_ms"]


def test_ablation_copy_specialization(benchmark, write_table):
    """Summary of the Fig. 12 effect at one configuration."""

    def run():
        rows = []
        for specialized in (False, True):
            counters = measure_generated_matmul(
                128, 128, 128, 16, 3, "Cs", specialized=specialized
            )
            rows.append({
                "copies": "memcpy-specialized" if specialized
                          else "generic-recursive",
                "task_clock_ms": counters.task_clock_ms(),
                "cache_references": counters.cache_references,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table("ablation_copy_specialization", format_table(
        rows, ("copies", "task_clock_ms", "cache_references")
    ))
    generic, fast = rows
    assert fast["task_clock_ms"] < generic["task_clock_ms"]
    assert fast["cache_references"] < generic["cache_references"]


def test_ablation_call_specialization(benchmark, write_table):
    """Generated (constant-folded) calls vs generic library calls."""
    dims, size = 64, 8

    def run():
        hw, info = make_matmul_system(3, size, flow="Ns")
        board = make_pynq_z2()
        board.attach_accelerator(hw)
        kernel = AXI4MLIRCompiler(info).compile_matmul(dims, dims, dims)
        rng = np.random.default_rng(0)
        a = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
        b = rng.integers(-7, 7, (dims, dims)).astype(np.int32)
        rows = []
        for style in ("generated", CALL_STYLE_MANUAL):
            hw_i, _ = make_matmul_system(3, size, flow="Ns")
            board_i = make_pynq_z2()
            board_i.attach_accelerator(hw_i)
            c = np.zeros((dims, dims), np.int32)
            runtime = AxiRuntime(board_i, call_style=style,
                                 copy_style="specialized")
            counters = kernel.run(board_i, a, b, c, runtime=runtime)
            rows.append({
                "call_style": style,
                "task_clock_ms": counters.task_clock_ms(),
                "cpu_cycles": counters.cpu_cycles,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_table("ablation_call_specialization", format_table(
        rows, ("call_style", "task_clock_ms", "cpu_cycles")
    ))
    generated, manual_style = rows
    assert generated["cpu_cycles"] < manual_style["cpu_cycles"]
