"""Fig. 11: manual Ns vs AXI4MLIR-generated flows, before the MemRef
copy specialization.

Expected shape: the generated Ns driver (recursive element-wise copies)
is slower than the hand-written Ns baseline; the Cs flow already
improves on generated Ns, but the real gains need the Fig. 12 copy
optimization.
"""

from repro.experiments import fig11_rows, format_table

COLUMNS = ("dims", "accel_size", "accel_version", "impl", "flow",
           "task_clock_ms")


def test_fig11_flows(benchmark, write_table):
    rows = benchmark.pedantic(fig11_rows, rounds=1, iterations=1)
    write_table("fig11_flows", format_table(rows, COLUMNS))

    def ms(dims, size, version, impl, flow):
        return next(
            r["task_clock_ms"] for r in rows
            if (r["dims"], r["accel_size"], r["accel_version"],
                r["impl"], r["flow"])
            == (dims, size, f"v{version}", impl, flow)
        )

    for dims in (64, 128):
        for size in (8, 16):
            assert ms(dims, size, 3, "mlir_AXI4MLIR", "Ns") > \
                ms(dims, size, 3, "cpp_MANUAL", "Ns")
            assert ms(dims, size, 3, "mlir_AXI4MLIR", "Cs") < \
                ms(dims, size, 3, "mlir_AXI4MLIR", "Ns")
