"""CI perf-regression guard over the BENCH_perf.json trajectory.

Compares a freshly generated ``BENCH_perf.json`` against the committed
baseline and fails (exit code 1) when the benchmark session got more
than ``--threshold`` slower — in total, on any of the three slowest
baseline harnesses (the ones a perf regression would hide in), or on
any pipeline *stage* (``compile_s`` / ``trace_synth_s`` /
``trace_record_s`` / ``manual_record_s`` / ``replay_s`` /
``metrics_plan_build_s`` / ``metrics_plan_apply_s`` /
``model_plan_build_s`` / ``model_plan_apply_s``): a stage-level
guard catches e.g. a change that silently knocks every kernel off the
synthesis path onto recording — or every replay off the cached
metrics-plan path onto a full rebuild — even when harness totals still
squeak under the threshold.  Stages below ``_STAGE_FLOOR_S`` in the
baseline are skipped — their ratios are noise (and a near-zero
baseline stage like ``trace_record_s`` or ``metrics_plan_apply_s``
*growing* past the floor is exactly what the floor-crossing check
below exists for).

Both session totals are guarded: ``benchmarks_total_s`` (cold-leaning
full session) and, when the baseline records one, ``warm_total_s`` —
the same session re-run against a hot store (see
``benchmarks/conftest.py``'s ``REPRO_BENCH_RECORD_WARM`` mode) — so a
cold-path win cannot mask a warm-path regression or vice versa.

**The stage-accounting rule.**  ``per_stage_s`` entries are wall-clock
seconds accumulated *in whichever process ran the stage*: every pool
worker (model-replay jobs, plan prebuilds, tuning sweep points,
service requests) snapshots the cumulative counters at job entry and
reports the end-minus-start *delta*, which exactly one merge site
folds back into the parent (``run_model_jobs`` per job, the sweep
driver per reply, the service per request plus one drain-time residue
merge per worker).  Deltas are disjoint by construction, so each
stage-second is counted exactly once — never double-counted, never
silently dropped.  Inline fallbacks accumulate directly and report no
delta.  Two consequences for reading the numbers: (1) fanning work
onto N workers does **not** shrink a stage's seconds — the workers'
seconds merge back, and stage totals can exceed session wall-clock;
parallel wins show up in ``benchmarks_total_s`` / ``warm_total_s``
only.  (2) a stage second belongs to the stage that *ran*, wherever it
ran — a plan prebuilt by ``prebuild_plans()`` lands in
``metrics_plan_build_s`` exactly as an inline build would.

Usage (as wired in .github/workflows/ci.yml)::

    python benchmarks/perf_guard.py \
        --baseline /tmp/bench_baseline.json --fresh BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Stages quicker than this in the baseline are exempt from the ratio
#: guard, but must stay under it (times the threshold) in the fresh
#: record too — a stage going from ~0 to substantial is a regression
#: no ratio can express.
_STAGE_FLOOR_S = 0.2


def compare(baseline: dict, fresh: dict, threshold: float) -> list:
    failures = []
    base_total = baseline.get("benchmarks_total_s")
    fresh_total = fresh.get("benchmarks_total_s")
    if base_total and fresh_total:
        print(f"benchmarks_total_s: baseline {base_total:.3f}s, "
              f"fresh {fresh_total:.3f}s "
              f"({fresh_total / base_total:.2f}x)")
        if fresh_total > base_total * threshold:
            failures.append(
                f"total {fresh_total:.3f}s exceeds {threshold:.2f}x "
                f"baseline {base_total:.3f}s"
            )
    base_warm = baseline.get("warm_total_s")
    fresh_warm = fresh.get("warm_total_s")
    if base_warm:
        if fresh_warm is None:
            failures.append("warm_total_s missing from the fresh record")
        else:
            print(f"warm_total_s: baseline {base_warm:.3f}s, "
                  f"fresh {fresh_warm:.3f}s "
                  f"({fresh_warm / base_warm:.2f}x)")
            if fresh_warm > base_warm * threshold:
                failures.append(
                    f"warm total {fresh_warm:.3f}s exceeds "
                    f"{threshold:.2f}x baseline {base_warm:.3f}s"
                )
    base_harnesses = baseline.get("per_harness_s", {})
    fresh_harnesses = fresh.get("per_harness_s", {})
    slowest = sorted(base_harnesses, key=base_harnesses.get,
                     reverse=True)[:3]
    for name in slowest:
        base_s = base_harnesses[name]
        fresh_s = fresh_harnesses.get(name)
        if fresh_s is None:
            failures.append(f"{name} missing from the fresh record")
            continue
        ratio = fresh_s / base_s if base_s else float("inf")
        print(f"{name}: baseline {base_s:.3f}s, fresh {fresh_s:.3f}s "
              f"({ratio:.2f}x)")
        if base_s and fresh_s > base_s * threshold:
            failures.append(
                f"{name} {fresh_s:.3f}s exceeds {threshold:.2f}x "
                f"baseline {base_s:.3f}s"
            )
    failures.extend(compare_stages(baseline.get("per_stage_s", {}),
                                   fresh.get("per_stage_s", {}),
                                   threshold))
    return failures


def compare_stages(base_stages: dict, fresh_stages: dict,
                   threshold: float) -> list:
    failures = []
    for name in sorted(base_stages):
        base_s = base_stages[name]
        fresh_s = fresh_stages.get(name)
        if fresh_s is None:
            if base_s >= _STAGE_FLOOR_S:
                failures.append(
                    f"stage {name} missing from the fresh record"
                )
            continue
        print(f"stage {name}: baseline {base_s:.3f}s, "
              f"fresh {fresh_s:.3f}s")
        if base_s >= _STAGE_FLOOR_S:
            if fresh_s > base_s * threshold:
                failures.append(
                    f"stage {name} {fresh_s:.3f}s exceeds "
                    f"{threshold:.2f}x baseline {base_s:.3f}s"
                )
        elif fresh_s > _STAGE_FLOOR_S * threshold:
            failures.append(
                f"stage {name} grew from {base_s:.3f}s to {fresh_s:.3f}s "
                f"(floor {_STAGE_FLOOR_S:.2f}s x {threshold:.2f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=Path)
    parser.add_argument("--fresh", required=True, type=Path)
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="allowed slowdown ratio (default 1.25)")
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures = compare(baseline, fresh, args.threshold)
    if failures:
        print("\nPERF REGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
