"""Fig. 12: perf counters without (a) / with (b) the MemRef-DMA copy
specialization, v3-16 accelerator, dims == 128, normalized to mlir_CPU.

Expected shape: panel (a) — generated code has more branches, cache
references, and task-clock than the manual driver; panel (b) — the
specialized copies put every generated flow below the manual driver on
all three metrics.
"""

from repro.experiments import fig12_rows, format_table

COLUMNS = ("panel", "impl", "flow", "branch-instructions",
           "cache-references", "task-clock")


def test_fig12_copy_optimization(benchmark, write_table):
    rows = benchmark.pedantic(fig12_rows, rounds=1, iterations=1)
    write_table("fig12_copyopt", format_table(rows, COLUMNS))

    def pick(panel, impl, flow):
        return next(r for r in rows
                    if (r["panel"].startswith(panel), r["impl"],
                        r["flow"]) == (True, impl, flow))

    manual = pick("12a", "cpp_MANUAL", "Ns")
    unopt = pick("12a", "mlir_AXI4MLIR", "Ns")
    for metric in ("branch-instructions", "cache-references", "task-clock"):
        assert unopt[metric] > manual[metric]

    manual_b = pick("12b", "cpp_MANUAL", "Ns")
    for flow in ("Ns", "As", "Bs", "Cs"):
        optimized = pick("12b", "mlir_AXI4MLIR", flow)
        for metric in ("branch-instructions", "cache-references",
                       "task-clock"):
            assert optimized[metric] < manual_b[metric]
