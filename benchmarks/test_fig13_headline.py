"""Fig. 13: the headline comparison — manual vs AXI4MLIR-generated
driver code with matched (dims, accel size, version, flow).

Expected shape: AXI4MLIR is faster in every configuration (paper:
1.18x average, 1.65x max speedup; up to 56% fewer cache references).
"""

from repro.experiments import fig13_rows, format_table

COLUMNS = ("dims", "accel_size", "accel_version", "flow",
           "cpp_MANUAL_ms", "mlir_AXI4MLIR_ms", "speedup",
           "cache_ref_reduction")


def test_fig13_headline(benchmark, write_table):
    rows = benchmark.pedantic(fig13_rows, rounds=1, iterations=1)
    speedups = [r["speedup"] for r in rows]
    mean = sum(speedups) / len(speedups)
    summary = format_table(rows, COLUMNS) + (
        f"\n\nmean speedup {mean:.3f}, max {max(speedups):.3f}, "
        f"max cache-ref reduction "
        f"{max(r['cache_ref_reduction'] for r in rows):.3f}"
    )
    write_table("fig13_headline", summary)

    assert all(s > 1.0 for s in speedups)
    assert 1.05 <= mean <= 1.45
