"""Benchmark support: result-table writer and perf-trajectory tracking.

Besides the per-figure result tables, a session that collects any
benchmark test writes ``BENCH_perf.json`` at the repo root: wall-clock
seconds per figure harness plus the benchmark/session totals, so the
perf trajectory of the cost engine is tracked across PRs.
"""

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_BENCH_DIR = Path(__file__).resolve().parent
_durations = {}
_expected = set()
_collected_files = set()
_stage_snapshot = None


@pytest.fixture
def write_table():
    """Persist a rendered result table under ``benchmarks/results/``."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{name}:\n{text}")

    return write


def pytest_collection_modifyitems(session, config, items):
    for item in items:
        # Resolve before comparing: item paths arrive as invoked (which
        # may go through symlinks) while _BENCH_DIR is resolved.
        path = Path(str(item.fspath)).resolve()
        if _BENCH_DIR in path.parents:
            _expected.add(item.nodeid)
            _collected_files.add(path)


def pytest_runtest_logreport(report):
    if report.when == "call" and report.nodeid in _expected:
        name = report.nodeid.rsplit("::", 1)[-1]
        _durations[name] = _durations.get(name, 0.0) + report.duration
        # Per-stage timings are cumulative for the process; snapshot
        # after every benchmark test so the recorded breakdown covers
        # exactly the benchmark portion of the session (the unit tests
        # that run afterwards exercise the recording path on purpose
        # and must not pollute the trajectory).
        global _stage_snapshot
        try:
            from repro.experiments import stage_timings

            _stage_snapshot = stage_timings()
        except Exception:
            pass


def pytest_sessionfinish(session, exitstatus):
    # Only record full benchmark sessions — a partial run (one figure
    # file, a -k filter) must not clobber the cross-PR perf trajectory.
    # Completeness is judged against the files on disk, not merely the
    # session's collection (a path-scoped run collects a subset).
    if not _durations:
        return
    if _collected_files < set(_BENCH_DIR.glob("test_*.py")):
        return
    if len(_durations) < len(
        {nodeid.rsplit("::", 1)[-1] for nodeid in _expected}
    ):
        return
    payload = {
        "per_harness_s": {
            name: round(seconds, 3)
            for name, seconds in sorted(_durations.items())
        },
        "benchmarks_total_s": round(sum(_durations.values()), 3),
        "collected": session.testscollected,
        "exit_status": int(exitstatus),
    }
    if _stage_snapshot is not None:
        # Per-stage breakdown of the speed path (compiled-kernel cache →
        # trace synthesis/recording → batched replay), so future PRs can
        # see where the remaining time goes.
        payload["per_stage_s"] = {
            name: round(seconds, 3)
            for name, seconds in sorted(_stage_snapshot.items())
        }
    BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2) + "\n")
