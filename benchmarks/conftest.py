"""Benchmark support: result-table writer shared by all figures."""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def write_table():
    """Persist a rendered result table under ``benchmarks/results/``."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{name}:\n{text}")

    return write
