"""Benchmark support: result-table writer and perf-trajectory tracking.

Besides the per-figure result tables, a session that collects any
benchmark test writes ``BENCH_perf.json`` at the repo root: wall-clock
seconds per figure harness plus the benchmark/session totals, so the
perf trajectory of the cost engine is tracked across PRs.

With ``REPRO_BENCH_RECORD_WARM=1`` the session records only
``warm_total_s`` into the existing record — run the benchmarks once
normally (cold-leaning; writes the full payload), then a second time
with this flag and a hot ``REPRO_KERNEL_CACHE_DIR`` to capture the
warm-path figure.  A normal full session carries an existing
``warm_total_s`` forward, so the two legs can be refreshed
independently; ``perf_guard.py`` guards both totals.
"""

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_PERF_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_BENCH_DIR = Path(__file__).resolve().parent
_durations = {}
_expected = set()
_collected_files = set()
_stage_snapshot = None


@pytest.fixture
def write_table():
    """Persist a rendered result table under ``benchmarks/results/``."""

    def write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{name}:\n{text}")

    return write


def pytest_collection_modifyitems(session, config, items):
    for item in items:
        # Resolve before comparing: item paths arrive as invoked (which
        # may go through symlinks) while _BENCH_DIR is resolved.
        path = Path(str(item.fspath)).resolve()
        if _BENCH_DIR in path.parents:
            _expected.add(item.nodeid)
            _collected_files.add(path)


def pytest_runtest_logreport(report):
    if report.when == "call" and report.nodeid in _expected:
        name = report.nodeid.rsplit("::", 1)[-1]
        _durations[name] = _durations.get(name, 0.0) + report.duration
        # Per-stage timings are cumulative for the process; snapshot
        # after every benchmark test so the recorded breakdown covers
        # exactly the benchmark portion of the session (the unit tests
        # that run afterwards exercise the recording path on purpose
        # and must not pollute the trajectory).
        global _stage_snapshot
        try:
            from repro.experiments import stage_timings

            _stage_snapshot = stage_timings()
        except Exception:
            pass


def pytest_sessionfinish(session, exitstatus):
    # Only record full benchmark sessions — a partial run (one figure
    # file, a -k filter) must not clobber the cross-PR perf trajectory.
    # Completeness is judged against the files on disk, not merely the
    # session's collection (a path-scoped run collects a subset).
    if not _durations:
        return
    if _collected_files < set(_BENCH_DIR.glob("test_*.py")):
        return
    if len(_durations) < len(
        {nodeid.rsplit("::", 1)[-1] for nodeid in _expected}
    ):
        return
    total = round(sum(_durations.values()), 3)
    if os.environ.get("REPRO_BENCH_RECORD_WARM"):
        # Warm (second-session, hot store) leg: update only the
        # warm-path figure, leaving the cold payload untouched.
        try:
            payload = json.loads(BENCH_PERF_PATH.read_text())
        except (OSError, ValueError):
            payload = {}
        payload["warm_total_s"] = total
        BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        return
    payload = {
        "per_harness_s": {
            name: round(seconds, 3)
            for name, seconds in sorted(_durations.items())
        },
        "benchmarks_total_s": total,
        "collected": session.testscollected,
        "exit_status": int(exitstatus),
    }
    try:
        # Keep the warm-leg figure across cold refreshes — the two
        # legs are recorded by separate sessions.
        previous_warm = json.loads(
            BENCH_PERF_PATH.read_text()).get("warm_total_s")
        if previous_warm is not None:
            payload["warm_total_s"] = previous_warm
    except (OSError, ValueError):
        pass
    if _stage_snapshot is not None:
        # Per-stage breakdown of the speed path (compiled-kernel cache →
        # trace synthesis/recording → batched replay), so future PRs can
        # see where the remaining time goes.
        payload["per_stage_s"] = {
            name: round(seconds, 3)
            for name, seconds in sorted(_stage_snapshot.items())
        }
    BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2) + "\n")
