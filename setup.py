"""Setup shim.

The evaluation environment has no ``wheel`` package (offline), so PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``.  Keeping a
``setup.py`` lets ``pip install -e . --no-use-pep517`` (and older pips'
default path) install via ``setup.py develop`` instead.
"""

from setuptools import setup

setup()
